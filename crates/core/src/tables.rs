//! The ZOLC storage resources (paper Fig. 1).
//!
//! Three groups of registers, written by the `zwr` instruction during
//! *initialization mode* (and, for data-dependent loop limits, from inside
//! an enclosing loop body):
//!
//! * **loop parameter table** — per-loop bounds (`init`/`step`/`limit`),
//!   the index register written by the index calculation unit, and the
//!   loop body's start/end addresses;
//! * **task-switching LUT** — per task: the task's end address, the loop
//!   whose status its completion consults, and the successor task for the
//!   *iterate* and *fall-through* outcomes;
//! * **entry/exit records** (ZOLCfull only) — multiple-entry/exit support.
//!
//! Iteration *counts* are dynamic state ([`crate::DynState`]), not table
//! contents: they exist twice (speculative and architectural).

use crate::config::{ZolcConfig, MAX_LOOPS, TASK_NONE};
use std::fmt;
use zolc_isa::{entry_field, exit_field, global_field, loop_field, task_field, Reg, ZolcRegion};

/// One loop's static parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoopRecord {
    /// Initial index value (written to the index register on entry).
    pub init: u32,
    /// Index step applied per iteration (two's-complement).
    pub step: u32,
    /// Number of iterations the body executes (must be ≥ 1 when reached).
    pub limit: u32,
    /// GPR updated by the index calculation unit (`None` = no index).
    pub index_reg: Option<Reg>,
    /// Byte address of the first body instruction.
    pub start: u32,
    /// Byte address of the last body instruction.
    pub end: u32,
    /// Reserved per-loop flags.
    pub flags: u32,
}

/// One task-switching LUT entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskRecord {
    /// Byte address of the task's final instruction (the *task end*).
    pub end: u32,
    /// The loop whose iteration status this task's completion consults.
    pub loop_id: u8,
    /// Task that becomes current when the loop iterates.
    pub next_iter: u8,
    /// Task that becomes current when the loop completes (chained lookup
    /// continues if that task ends at the same address).
    pub next_fallthru: u8,
    /// Whether this entry participates in matching.
    pub valid: bool,
    /// Reserved flags.
    pub flags: u32,
}

impl Default for TaskRecord {
    fn default() -> Self {
        TaskRecord {
            end: 0,
            loop_id: 0,
            next_iter: TASK_NONE,
            next_fallthru: TASK_NONE,
            valid: false,
            flags: 0,
        }
    }
}

/// One multiple-entry record (ZOLCfull).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EntryRecord {
    /// Address whose fetch signals entry into the loop structure.
    pub addr: u32,
    /// Task that becomes current on entry.
    pub task: u8,
    /// Loops (bitmask) whose counters and indices initialize on entry.
    pub init_mask: u8,
    /// Optional fetch redirect applied on entry (0 = none).
    pub redirect: u32,
    /// Whether this record participates in matching.
    pub valid: bool,
}

/// One multiple-exit record (ZOLCfull).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExitRecord {
    /// Address of the branch realizing the early exit.
    pub branch: u32,
    /// Task that becomes current when that branch is taken.
    pub target_task: u8,
    /// Loops (bitmask) whose counters clear on exit.
    pub clear_mask: u8,
    /// Expected branch target (cross-check only; 0 = unchecked).
    pub target: u32,
    /// Whether this record participates in matching.
    pub valid: bool,
}

/// Errors raised by table writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// The record index exceeds the configured table size.
    IndexOutOfRange {
        /// Region written.
        region: ZolcRegion,
        /// Offending index.
        index: u8,
        /// Configured capacity.
        capacity: usize,
    },
    /// The field selector does not exist for this region.
    UnknownField {
        /// Region written.
        region: ZolcRegion,
        /// Offending field selector.
        field: u8,
    },
    /// The configuration has no such region (e.g. exit records on ZOLClite).
    RegionUnavailable {
        /// Region written.
        region: ZolcRegion,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::IndexOutOfRange {
                region,
                index,
                capacity,
            } => write!(
                f,
                "{region} record {index} out of range (capacity {capacity})"
            ),
            TableError::UnknownField { region, field } => {
                write!(f, "unknown field {field} for {region} records")
            }
            TableError::RegionUnavailable { region } => {
                write!(f, "this configuration has no {region} records")
            }
        }
    }
}

impl std::error::Error for TableError {}

/// Effect of a `zwr` that the controller must apply outside the tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteEffect {
    /// Static table contents changed.
    Static,
    /// The write targeted a loop's *count*: dynamic state must be updated.
    Count {
        /// The loop whose counter was written.
        loop_id: u8,
        /// The new counter value.
        value: u32,
    },
}

/// The complete register/table file of one ZOLC instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZolcTables {
    config: ZolcConfig,
    loops: Vec<LoopRecord>,
    tasks: Vec<TaskRecord>,
    entries: Vec<EntryRecord>,
    exits: Vec<ExitRecord>,
    /// Code base address (offsets in hardware are base-relative; the model
    /// stores absolute addresses and keeps the base for reporting).
    code_base: u32,
}

impl ZolcTables {
    /// Creates empty (all-invalid) tables for a configuration.
    pub fn new(config: ZolcConfig) -> ZolcTables {
        ZolcTables {
            config,
            loops: vec![LoopRecord::default(); config.loops()],
            tasks: vec![TaskRecord::default(); config.tasks()],
            entries: vec![EntryRecord::default(); config.loops() * config.entry_slots()],
            exits: vec![ExitRecord::default(); config.loops() * config.exit_slots()],
            code_base: 0,
        }
    }

    /// The configuration these tables were sized for.
    pub fn config(&self) -> &ZolcConfig {
        &self.config
    }

    /// Clears every record and the base address.
    pub fn reset(&mut self) {
        for l in &mut self.loops {
            *l = LoopRecord::default();
        }
        for t in &mut self.tasks {
            *t = TaskRecord::default();
        }
        for e in &mut self.entries {
            *e = EntryRecord::default();
        }
        for x in &mut self.exits {
            *x = ExitRecord::default();
        }
        self.code_base = 0;
    }

    /// The loop records.
    pub fn loops(&self) -> &[LoopRecord] {
        &self.loops
    }

    /// The task records.
    pub fn tasks(&self) -> &[TaskRecord] {
        &self.tasks
    }

    /// The entry records (empty unless the configuration has them).
    pub fn entries(&self) -> &[EntryRecord] {
        &self.entries
    }

    /// The exit records (empty unless the configuration has them).
    pub fn exits(&self) -> &[ExitRecord] {
        &self.exits
    }

    /// Looks up a loop record.
    pub fn loop_rec(&self, id: u8) -> Option<&LoopRecord> {
        self.loops.get(usize::from(id))
    }

    /// Looks up a task record.
    pub fn task(&self, id: u8) -> Option<&TaskRecord> {
        if id == TASK_NONE {
            return None;
        }
        self.tasks.get(usize::from(id))
    }

    /// The valid entry record matching an address, if any.
    pub fn entry_at(&self, pc: u32) -> Option<&EntryRecord> {
        self.entries.iter().find(|e| e.valid && e.addr == pc)
    }

    /// The valid exit record whose branch address matches, if any.
    pub fn exit_at(&self, pc: u32) -> Option<&ExitRecord> {
        self.exits.iter().find(|e| e.valid && e.branch == pc)
    }

    /// Direct mutable access for image loading (tests / the loader).
    pub(crate) fn loops_mut(&mut self) -> &mut [LoopRecord] {
        &mut self.loops
    }

    pub(crate) fn tasks_mut(&mut self) -> &mut [TaskRecord] {
        &mut self.tasks
    }

    pub(crate) fn entries_mut(&mut self) -> &mut [EntryRecord] {
        &mut self.entries
    }

    pub(crate) fn exits_mut(&mut self) -> &mut [ExitRecord] {
        &mut self.exits
    }

    /// Applies a `zwr` write.
    ///
    /// # Errors
    ///
    /// Returns [`TableError`] when the region is not present in this
    /// configuration, the index exceeds its capacity, or the field selector
    /// is unknown. (The controller records these as configuration
    /// violations; real hardware would ignore the write.)
    pub fn write(
        &mut self,
        region: ZolcRegion,
        index: u8,
        field: u8,
        value: u32,
    ) -> Result<WriteEffect, TableError> {
        let oob = |capacity: usize| TableError::IndexOutOfRange {
            region,
            index,
            capacity,
        };
        match region {
            ZolcRegion::Loop => {
                let cap = self.loops.len();
                let rec = self.loops.get_mut(usize::from(index)).ok_or(oob(cap))?;
                match field {
                    loop_field::INIT => rec.init = value,
                    loop_field::STEP => rec.step = value,
                    loop_field::LIMIT => rec.limit = value,
                    loop_field::COUNT => {
                        return Ok(WriteEffect::Count {
                            loop_id: index,
                            value,
                        })
                    }
                    loop_field::INDEX_REG => {
                        rec.index_reg = Reg::new((value & 0x1f) as u8).filter(|r| !r.is_zero());
                    }
                    loop_field::START => rec.start = value,
                    loop_field::END => rec.end = value,
                    loop_field::FLAGS => rec.flags = value,
                    f => return Err(TableError::UnknownField { region, field: f }),
                }
            }
            ZolcRegion::Task => {
                let cap = self.tasks.len();
                if cap == 0 {
                    return Err(TableError::RegionUnavailable { region });
                }
                let rec = self.tasks.get_mut(usize::from(index)).ok_or(oob(cap))?;
                match field {
                    task_field::END => rec.end = value,
                    task_field::LOOP_ID => rec.loop_id = (value & 0x7) as u8,
                    task_field::NEXT_ITER => rec.next_iter = (value & 0x1f) as u8,
                    task_field::NEXT_FALLTHRU => rec.next_fallthru = (value & 0x1f) as u8,
                    task_field::CTL => {
                        rec.valid = value & 1 != 0;
                        rec.flags = value >> 1;
                    }
                    f => return Err(TableError::UnknownField { region, field: f }),
                }
            }
            ZolcRegion::Entry => {
                let cap = self.entries.len();
                if cap == 0 {
                    return Err(TableError::RegionUnavailable { region });
                }
                let rec = self.entries.get_mut(usize::from(index)).ok_or(oob(cap))?;
                match field {
                    entry_field::ADDR => rec.addr = value,
                    entry_field::TASK => rec.task = (value & 0x1f) as u8,
                    entry_field::INIT_MASK => rec.init_mask = (value & 0xff) as u8,
                    entry_field::REDIRECT => rec.redirect = value,
                    entry_field::VALID => rec.valid = value & 1 != 0,
                    f => return Err(TableError::UnknownField { region, field: f }),
                }
            }
            ZolcRegion::Exit => {
                let cap = self.exits.len();
                if cap == 0 {
                    return Err(TableError::RegionUnavailable { region });
                }
                let rec = self.exits.get_mut(usize::from(index)).ok_or(oob(cap))?;
                match field {
                    exit_field::BRANCH => rec.branch = value,
                    exit_field::TASK => rec.target_task = (value & 0x1f) as u8,
                    exit_field::CLEAR_MASK => rec.clear_mask = (value & 0xff) as u8,
                    exit_field::TARGET => rec.target = value,
                    exit_field::VALID => rec.valid = value & 1 != 0,
                    f => return Err(TableError::UnknownField { region, field: f }),
                }
            }
            ZolcRegion::Global => match field {
                global_field::CODE_BASE => self.code_base = value,
                // task/loop counts are implied by the valid bits in this
                // model; accept the writes for instruction-set completeness.
                global_field::TASK_COUNT | global_field::LOOP_COUNT => {}
                f => return Err(TableError::UnknownField { region, field: f }),
            },
        }
        Ok(WriteEffect::Static)
    }

    /// Bitmask helper: the loops selected by `mask`, in ascending order.
    pub fn loops_in_mask(mask: u8) -> impl Iterator<Item = u8> {
        (0..MAX_LOOPS as u8).filter(move |k| mask & (1 << k) != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zolc_isa::reg;

    #[test]
    fn write_loop_fields() {
        let mut t = ZolcTables::new(ZolcConfig::lite());
        t.write(ZolcRegion::Loop, 2, loop_field::INIT, 5).unwrap();
        t.write(ZolcRegion::Loop, 2, loop_field::STEP, 1).unwrap();
        t.write(ZolcRegion::Loop, 2, loop_field::LIMIT, 10).unwrap();
        t.write(ZolcRegion::Loop, 2, loop_field::INDEX_REG, 7)
            .unwrap();
        t.write(ZolcRegion::Loop, 2, loop_field::START, 0x40)
            .unwrap();
        t.write(ZolcRegion::Loop, 2, loop_field::END, 0x60).unwrap();
        let l = t.loop_rec(2).unwrap();
        assert_eq!(l.init, 5);
        assert_eq!(l.limit, 10);
        assert_eq!(l.index_reg, Some(reg(7)));
        assert_eq!((l.start, l.end), (0x40, 0x60));
    }

    #[test]
    fn count_write_is_dynamic() {
        let mut t = ZolcTables::new(ZolcConfig::lite());
        let eff = t.write(ZolcRegion::Loop, 1, loop_field::COUNT, 3).unwrap();
        assert_eq!(
            eff,
            WriteEffect::Count {
                loop_id: 1,
                value: 3
            }
        );
    }

    #[test]
    fn index_reg_zero_means_none() {
        let mut t = ZolcTables::new(ZolcConfig::lite());
        t.write(ZolcRegion::Loop, 0, loop_field::INDEX_REG, 0)
            .unwrap();
        assert_eq!(t.loop_rec(0).unwrap().index_reg, None);
    }

    #[test]
    fn capacity_enforced() {
        let mut t = ZolcTables::new(ZolcConfig::micro());
        assert!(matches!(
            t.write(ZolcRegion::Loop, 1, loop_field::INIT, 0),
            Err(TableError::IndexOutOfRange { .. })
        ));
        assert!(matches!(
            t.write(ZolcRegion::Task, 0, task_field::END, 0),
            Err(TableError::RegionUnavailable { .. })
        ));
        let mut lite = ZolcTables::new(ZolcConfig::lite());
        assert!(matches!(
            lite.write(ZolcRegion::Exit, 0, exit_field::BRANCH, 0),
            Err(TableError::RegionUnavailable { .. })
        ));
    }

    #[test]
    fn unknown_field_rejected() {
        let mut t = ZolcTables::new(ZolcConfig::full());
        assert!(matches!(
            t.write(ZolcRegion::Loop, 0, 31, 0),
            Err(TableError::UnknownField { .. })
        ));
        assert!(t
            .write(ZolcRegion::Global, 0, global_field::CODE_BASE, 0x100)
            .is_ok());
    }

    #[test]
    fn task_ctl_packs_valid_and_flags() {
        let mut t = ZolcTables::new(ZolcConfig::lite());
        t.write(ZolcRegion::Task, 3, task_field::CTL, 0b101)
            .unwrap();
        let rec = t.task(3).unwrap();
        assert!(rec.valid);
        assert_eq!(rec.flags, 0b10);
        assert!(t.task(TASK_NONE).is_none());
    }

    #[test]
    fn entry_exit_matching() {
        let mut t = ZolcTables::new(ZolcConfig::full());
        t.write(ZolcRegion::Entry, 0, entry_field::ADDR, 0x80)
            .unwrap();
        t.write(ZolcRegion::Entry, 0, entry_field::VALID, 1)
            .unwrap();
        t.write(ZolcRegion::Exit, 5, exit_field::BRANCH, 0x9c)
            .unwrap();
        t.write(ZolcRegion::Exit, 5, exit_field::VALID, 1).unwrap();
        assert!(t.entry_at(0x80).is_some());
        assert!(t.entry_at(0x84).is_none());
        assert!(t.exit_at(0x9c).is_some());
        // invalid records never match
        t.write(ZolcRegion::Exit, 5, exit_field::VALID, 0).unwrap();
        assert!(t.exit_at(0x9c).is_none());
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = ZolcTables::new(ZolcConfig::full());
        t.write(ZolcRegion::Loop, 0, loop_field::LIMIT, 9).unwrap();
        t.write(ZolcRegion::Task, 0, task_field::CTL, 1).unwrap();
        t.reset();
        assert_eq!(t.loop_rec(0).unwrap().limit, 0);
        assert!(!t.task(0).unwrap().valid);
    }

    #[test]
    fn mask_iteration() {
        let v: Vec<u8> = ZolcTables::loops_in_mask(0b1010_0001).collect();
        assert_eq!(v, vec![0, 5, 7]);
    }
}

impl fmt::Display for ZolcTables {
    /// Dumps the programmed (valid/non-default) table contents — the
    /// debugging view of what an initialization sequence loaded.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.config)?;
        for (k, l) in self.loops.iter().enumerate() {
            if *l == LoopRecord::default() {
                continue;
            }
            writeln!(
                f,
                "  loop {k}: [{:#x}..{:#x}] init {} step {} limit {} index {}",
                l.start,
                l.end,
                l.init as i32,
                l.step as i32,
                l.limit,
                l.index_reg.map_or("-".into(), |r| r.to_string()),
            )?;
        }
        for (k, t) in self.tasks.iter().enumerate() {
            if !t.valid {
                continue;
            }
            writeln!(
                f,
                "  task {k}: end {:#x} loop {} iter->{} fall->{}",
                t.end, t.loop_id, t.next_iter, t.next_fallthru
            )?;
        }
        for (k, e) in self.entries.iter().enumerate() {
            if !e.valid {
                continue;
            }
            writeln!(
                f,
                "  entry {k}: at {:#x} task {} mask {:#04b}",
                e.addr, e.task, e.init_mask
            )?;
        }
        for (k, x) in self.exits.iter().enumerate() {
            if !x.valid {
                continue;
            }
            writeln!(
                f,
                "  exit {k}: branch {:#x} -> task {} clear {:#04b}",
                x.branch, x.target_task, x.clear_mask
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;
    use zolc_isa::reg;

    #[test]
    fn dump_shows_programmed_records_only() {
        let mut t = ZolcTables::new(ZolcConfig::full());
        t.loops_mut()[0] = LoopRecord {
            init: 0,
            step: 4,
            limit: 10,
            index_reg: Some(reg(20)),
            start: 0x40,
            end: 0x58,
            flags: 0,
        };
        t.tasks_mut()[0] = TaskRecord {
            end: 0x58,
            loop_id: 0,
            next_iter: 0,
            next_fallthru: TASK_NONE,
            valid: true,
            flags: 0,
        };
        let s = t.to_string();
        assert!(s.contains("loop 0"));
        assert!(s.contains("task 0"));
        // only one loop/task line each (unprogrammed records suppressed)
        assert_eq!(
            s.matches("loop ").count(),
            1 + 1 /* header mentions loops */
        );
        assert!(!s.contains("entry"));
    }
}
