//! The [`Zolc`] controller: the paper's hardware unit as a [`LoopEngine`].
//!
//! # Speculation model
//!
//! The pipeline fetches speculatively (predict-not-taken), so fetch-time
//! decisions may be made for instructions that are later squashed. The
//! controller therefore keeps two copies of its dynamic state:
//!
//! * **speculative** — advanced by [`LoopEngine::on_fetch`]; drives the
//!   zero-overhead redirects;
//! * **architectural** — advanced by [`LoopEngine::on_execute`] when the
//!   same instruction retires (EX, no longer squashable).
//!
//! On any pipeline flush, speculative state is restored from architectural
//! state. Because [`crate::decide`] is deterministic, replaying it at
//! retire must produce exactly the decision made at fetch; the controller
//! keeps a FIFO *journal* of non-trivial fetch decisions and verifies each
//! against its replay, recording mismatches as **violations** (these catch
//! mis-scheduled in-loop `zwr` limit updates, which must precede the
//! affected task end by at least 3 instructions so the write retires
//! before the end address is fetched).
//!
//! # Executor independence
//!
//! The hooks are defined purely in terms of the [`LoopEngine`] trait, so
//! the controller runs unchanged on either simulator executor:
//!
//! * the **cycle-accurate pipeline** drives it speculatively — several
//!   fetches can separate an instruction's `on_fetch` from its
//!   `on_execute`, and wrong-path fetches are rolled back via `on_flush`;
//! * the **functional executor** drives it with strict per-instruction
//!   alternation (`on_fetch` immediately followed by `on_execute`, no
//!   wrong paths), under which speculative and architectural state never
//!   diverge and the journal trivially verifies.
//!
//! Both schedules are legal by the trait's contract and produce identical
//! architectural results (the root `prop_exec_equiv` suite checks this on
//! every benchmark kernel).

use crate::config::ZolcConfig;
use crate::dynamics::{decide, Decision, DynState};
use crate::tables::{WriteEffect, ZolcTables};
use std::collections::VecDeque;
use zolc_isa::{ZolcCtl, ZolcRegion};
use zolc_sim::{ExecEvent, FetchDecision, LoopEngine};

/// The zero-overhead loop controller.
///
/// # Examples
///
/// Directly exercising the engine interface (normally the pipeline does
/// this):
///
/// ```
/// use zolc_core::{Zolc, ZolcConfig};
/// use zolc_sim::LoopEngine;
/// use zolc_isa::ZolcCtl;
///
/// let mut z = Zolc::new(ZolcConfig::full());
/// z.exec_zctl(ZolcCtl::Activate { task: 0 });
/// assert!(z.arch_state().active);
/// z.exec_zctl(ZolcCtl::Deactivate);
/// assert!(!z.arch_state().active);
/// ```
#[derive(Debug, Clone)]
pub struct Zolc {
    tables: ZolcTables,
    arch: DynState,
    spec: DynState,
    journal: VecDeque<(u32, Decision)>,
    violations: Vec<String>,
    check: bool,
}

impl Zolc {
    /// Creates a controller with empty tables in inactive mode.
    pub fn new(config: ZolcConfig) -> Zolc {
        Zolc {
            tables: ZolcTables::new(config),
            arch: DynState::default(),
            spec: DynState::default(),
            journal: VecDeque::new(),
            violations: Vec::new(),
            check: true,
        }
    }

    /// The hardware configuration.
    pub fn config(&self) -> &ZolcConfig {
        self.tables.config()
    }

    /// The table contents.
    pub fn tables(&self) -> &ZolcTables {
        &self.tables
    }

    /// Mutable table access for direct image loading (bypassing the
    /// instruction interface; used by [`crate::ZolcImage::load_into`]).
    pub(crate) fn tables_mut(&mut self) -> &mut ZolcTables {
        &mut self.tables
    }

    /// The architectural dynamic state.
    pub fn arch_state(&self) -> &DynState {
        &self.arch
    }

    /// The speculative dynamic state.
    pub fn spec_state(&self) -> &DynState {
        &self.spec
    }

    /// Configuration violations and consistency-check failures recorded so
    /// far (empty on a correct run).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Enables or disables the fetch/retire consistency journal (enabled
    /// by default; disable only for throughput measurements).
    pub fn set_consistency_check(&mut self, on: bool) {
        self.check = on;
        if !on {
            self.journal.clear();
        }
    }

    /// Activates the controller directly (equivalent to executing
    /// `zctl.on task`).
    pub fn activate(&mut self, task: u8) {
        self.exec_zctl(ZolcCtl::Activate { task });
    }

    /// Panics if any violation was recorded (test helper).
    ///
    /// # Panics
    ///
    /// Panics with the list of violations when the run was inconsistent.
    pub fn assert_consistent(&self) {
        assert!(
            self.violations.is_empty(),
            "ZOLC violations: {:#?}",
            self.violations
        );
    }

    fn record_violation(&mut self, msg: String) {
        // Bound memory usage on pathological runs.
        if self.violations.len() < 64 {
            self.violations.push(msg);
        }
    }
}

impl LoopEngine for Zolc {
    fn on_fetch(&mut self, pc: u32) -> FetchDecision {
        let d = decide(&self.tables, &mut self.spec, pc);
        if self.check && !d.is_trivial() {
            self.journal.push_back((pc, d));
        }
        FetchDecision {
            redirect: d.redirect,
            index_writes: d.writes,
        }
    }

    fn on_execute(&mut self, pc: u32, event: ExecEvent) {
        // Replay the decision on architectural state.
        let d = decide(&self.tables, &mut self.arch, pc);
        if self.check && !d.is_trivial() {
            match self.journal.pop_front() {
                Some((jpc, jd)) if jpc == pc && jd == d => {}
                Some((jpc, jd)) => self.record_violation(format!(
                    "decision mismatch at {pc:#x}: fetch made {jd:?} at {jpc:#x}, retire replayed {d:?} \
                     (an in-loop zwr probably executed between the fetch and retire of a task end)"
                )),
                None => self.record_violation(format!(
                    "retire-time decision {d:?} at {pc:#x} had no fetch-time counterpart"
                )),
            }
        }

        // Multiple-exit records: a taken branch at a registered address
        // re-targets the current task and clears the exited loops' counters.
        if let ExecEvent::Taken { target } = event {
            if self.arch.active {
                if let Some(rec) = self.tables.exit_at(pc).copied() {
                    if rec.target != 0 && rec.target != target {
                        self.record_violation(format!(
                            "exit record at {pc:#x} expected target {:#x}, branch went to {target:#x}",
                            rec.target
                        ));
                    }
                    self.arch.current_task = rec.target_task;
                    for k in ZolcTables::loops_in_mask(rec.clear_mask) {
                        self.arch.counts[usize::from(k)] = 0;
                    }
                    // The taken branch flushes the pipeline right after
                    // this call; on_flush copies arch (with the exit
                    // applied) over spec.
                }
            }
        }
    }

    fn exec_zwr(&mut self, region: ZolcRegion, index: u8, field: u8, value: u32) {
        match self.tables.write(region, index, field, value) {
            Ok(WriteEffect::Static) => {}
            Ok(WriteEffect::Count { loop_id, value }) => {
                let k = usize::from(loop_id);
                if k < self.arch.counts.len() {
                    self.arch.counts[k] = value;
                    self.spec.counts[k] = value;
                }
            }
            Err(e) => self.record_violation(format!("zwr rejected: {e}")),
        }
    }

    fn exec_zctl(&mut self, op: ZolcCtl) {
        match op {
            ZolcCtl::Activate { task } => {
                self.arch.active = true;
                self.arch.current_task = task;
                self.spec = self.arch;
            }
            ZolcCtl::Deactivate => {
                self.arch.active = false;
                self.spec = self.arch;
            }
            ZolcCtl::Reset => {
                self.tables.reset();
                self.arch = DynState::default();
                self.spec = DynState::default();
                self.journal.clear();
            }
        }
    }

    fn on_flush(&mut self) {
        self.spec = self.arch;
        self.journal.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TASK_NONE;
    use crate::tables::{LoopRecord, TaskRecord};
    use zolc_isa::{loop_field, reg};

    fn controller_with_loop() -> Zolc {
        let mut z = Zolc::new(ZolcConfig::lite());
        z.tables_mut().loops_mut()[0] = LoopRecord {
            init: 0,
            step: 1,
            limit: 2,
            index_reg: Some(reg(4)),
            start: 0x10,
            end: 0x18,
            flags: 0,
        };
        z.tables_mut().tasks_mut()[0] = TaskRecord {
            end: 0x18,
            loop_id: 0,
            next_iter: 0,
            next_fallthru: TASK_NONE,
            valid: true,
            flags: 0,
        };
        z.activate(0);
        z
    }

    #[test]
    fn fetch_then_execute_is_consistent() {
        let mut z = controller_with_loop();
        // walk the loop exactly as the pipeline would: fetch then retire
        for pc in [0x0c, 0x10, 0x14, 0x18, 0x10, 0x14, 0x18, 0x1c] {
            let _ = z.on_fetch(pc);
            z.on_execute(pc, ExecEvent::Plain);
        }
        z.assert_consistent();
        assert_eq!(z.arch_state().counts[0], 0);
        assert_eq!(z.arch_state(), z.spec_state());
    }

    #[test]
    fn functional_drive_pattern_with_flush_mirroring_is_consistent() {
        // The functional executor's schedule: fetch/execute strictly
        // alternate and on_flush is mirrored after taken transfers; spec
        // and arch state must track each other exactly throughout.
        let mut z = controller_with_loop();
        for pc in [0x0c, 0x10, 0x14, 0x18, 0x10, 0x14, 0x18, 0x1c] {
            let _ = z.on_fetch(pc);
            z.on_execute(pc, ExecEvent::Plain);
            z.on_flush(); // worst case: mirror a flush after every instr
            assert_eq!(z.arch_state(), z.spec_state());
        }
        z.assert_consistent();
        assert_eq!(z.arch_state().counts[0], 0);
    }

    #[test]
    fn speculative_state_rolls_back_on_flush() {
        let mut z = controller_with_loop();
        let _ = z.on_fetch(0x0c);
        z.on_execute(0x0c, ExecEvent::Plain);
        // fetch the task end speculatively (advances spec)…
        let d = z.on_fetch(0x18);
        assert_eq!(d.redirect, Some(0x10));
        assert_eq!(z.spec_state().counts[0], 1);
        assert_eq!(z.arch_state().counts[0], 0);
        // …but a flush squashes it before it retires
        z.on_flush();
        assert_eq!(z.spec_state().counts[0], 0);
        z.assert_consistent();
    }

    #[test]
    fn mis_scheduled_zwr_is_detected() {
        let mut z = controller_with_loop();
        let _ = z.on_fetch(0x0c);
        z.on_execute(0x0c, ExecEvent::Plain);
        // fetch decision for the end uses limit=2 (iterate)…
        let _ = z.on_fetch(0x18);
        // …then a zwr changes the limit before the end retires
        z.exec_zwr(ZolcRegion::Loop, 0, loop_field::LIMIT, 1);
        z.on_execute(0x18, ExecEvent::Plain);
        assert!(!z.violations().is_empty());
    }

    #[test]
    fn zwr_count_updates_both_states() {
        let mut z = controller_with_loop();
        z.exec_zwr(ZolcRegion::Loop, 0, loop_field::COUNT, 5);
        assert_eq!(z.arch_state().counts[0], 5);
        assert_eq!(z.spec_state().counts[0], 5);
    }

    #[test]
    fn invalid_zwr_recorded_as_violation() {
        let mut z = Zolc::new(ZolcConfig::lite());
        z.exec_zwr(ZolcRegion::Exit, 0, 0, 0); // lite has no exit records
        assert_eq!(z.violations().len(), 1);
    }

    #[test]
    fn reset_clears_state_and_tables() {
        let mut z = controller_with_loop();
        z.exec_zctl(ZolcCtl::Reset);
        assert!(!z.arch_state().active);
        assert_eq!(z.tables().loop_rec(0).unwrap().limit, 0);
    }

    #[test]
    fn deactivate_stops_decisions() {
        let mut z = controller_with_loop();
        z.exec_zctl(ZolcCtl::Deactivate);
        let d = z.on_fetch(0x18);
        assert_eq!(d.redirect, None);
    }

    #[test]
    fn consistency_check_can_be_disabled() {
        let mut z = controller_with_loop();
        z.set_consistency_check(false);
        let _ = z.on_fetch(0x18);
        z.exec_zwr(ZolcRegion::Loop, 0, loop_field::LIMIT, 1);
        z.on_execute(0x18, ExecEvent::Plain);
        // inconsistent, but unchecked
        assert!(z.violations().is_empty());
    }
}
