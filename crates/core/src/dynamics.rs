//! The task selection unit's decision logic and the controller's dynamic
//! state.
//!
//! [`DynState`] is everything that changes while the controller is in
//! *active* mode: per-loop iteration counts, the shadow of each loop's
//! current index value, and the current task. The controller keeps **two**
//! copies: a *speculative* one advanced at fetch time (so redirects cost
//! zero cycles) and an *architectural* one advanced when instructions
//! retire; pipeline flushes copy architectural over speculative.
//!
//! [`decide`] is the combinational decision evaluated at a fetch address:
//!
//! 1. **multiple-entry records** (ZOLCfull): fetching a registered entry
//!    address re-targets the current task and initializes the loops named
//!    by the record's mask;
//! 2. **task-end matching**: when the fetched instruction is the current
//!    task's end, the associated loop either *iterates* (count++, index +=
//!    step, redirect to the loop start — the zero-overhead back edge) or
//!    *finishes* (count resets and the lookup **chains** to the
//!    fall-through task if it ends at the same address — this is how
//!    successive last iterations of nested loops complete in a single
//!    cycle);
//! 3. **loop-entry initialization**: if the *next* instruction address is
//!    the start of a loop whose count is zero, that loop is being entered;
//!    its index register is initialized through the dedicated write port.
//!    The write rides on the instruction *preceding* the body so the first
//!    body instruction already observes it via forwarding.

use crate::config::{MAX_LOOPS, TASK_NONE};
use crate::tables::ZolcTables;
use zolc_sim::RegWrites;

/// Dynamic (mode-dependent) controller state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynState {
    /// Whether the controller is in active mode.
    pub active: bool,
    /// The task whose end address fetch currently watches ([`TASK_NONE`]
    /// when no task is being tracked).
    pub current_task: u8,
    /// Iterations completed by each loop in its current activation.
    pub counts: [u32; MAX_LOOPS],
    /// Shadow of each loop's current index value (mirrors the index
    /// register file contents including in-flight rider writes).
    pub index_cur: [u32; MAX_LOOPS],
}

impl Default for DynState {
    fn default() -> Self {
        DynState {
            active: false,
            current_task: TASK_NONE,
            counts: [0; MAX_LOOPS],
            index_cur: [0; MAX_LOOPS],
        }
    }
}

/// What a fetch-time decision did (recorded for consistency checking).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecisionKind {
    /// Nothing matched.
    #[default]
    None,
    /// A multiple-entry record fired.
    Entry,
    /// A loop iterated: redirect to its start.
    Iterate {
        /// The iterating loop.
        loop_id: u8,
        /// Number of enclosing loops that finished first in the same cycle.
        chained: u8,
    },
    /// One or more loops finished; control falls through.
    Finish {
        /// Number of loops that finished in this cycle.
        depth: u8,
    },
}

/// The outcome of evaluating the controller at one fetch address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Decision {
    /// Next-fetch override (the zero-overhead task switch).
    pub redirect: Option<u32>,
    /// Index-register writes riding on the fetched instruction.
    pub writes: RegWrites,
    /// Classification for the journal/consistency checker.
    pub kind: DecisionKind,
}

impl Decision {
    /// Whether the decision had any externally visible effect.
    pub fn is_trivial(&self) -> bool {
        self.redirect.is_none() && self.writes.is_empty() && self.kind == DecisionKind::None
    }
}

/// Evaluates the task-selection and index-calculation logic at `pc`,
/// updating `st` in place.
///
/// This function is *pure hardware semantics*: the controller calls it on
/// the speculative state at fetch and replays it on the architectural
/// state at retire, asserting both produce identical [`Decision`]s.
pub fn decide(tables: &ZolcTables, st: &mut DynState, pc: u32) -> Decision {
    let mut d = Decision::default();
    if !st.active {
        return d;
    }

    // 1. Multiple-entry records (ZOLCfull). The entry address is inside
    // the loop body, so it is fetched again on every iteration; the
    // initialization applies only when the named loops are dormant
    // (count 0), i.e. on genuine entry from outside — internal revisits
    // leave the running counters alone.
    if let Some(rec) = tables.entry_at(pc).copied() {
        st.current_task = rec.task;
        let mut fired = false;
        for k in ZolcTables::loops_in_mask(rec.init_mask) {
            let ki = usize::from(k);
            if st.counts[ki] != 0 {
                continue;
            }
            if let Some(l) = tables.loop_rec(k).copied() {
                st.index_cur[ki] = l.init;
                if let Some(r) = l.index_reg {
                    d.writes.push(r, l.init);
                }
                fired = true;
            }
        }
        if fired {
            if rec.redirect != 0 {
                d.redirect = Some(rec.redirect);
            }
            d.kind = DecisionKind::Entry;
        }
    }

    // 2. Task-end matching with chaining.
    if tables.config().tasks() == 0 {
        // uZOLC: one implicit loop, no LUT.
        if let Some(l) = tables.loop_rec(0).copied() {
            if l.limit != 0 && pc == l.end {
                if st.counts[0] + 1 < l.limit {
                    st.counts[0] += 1;
                    st.index_cur[0] = st.index_cur[0].wrapping_add(l.step);
                    if let Some(r) = l.index_reg {
                        d.writes.push(r, st.index_cur[0]);
                    }
                    d.redirect = Some(l.start);
                    d.kind = DecisionKind::Iterate {
                        loop_id: 0,
                        chained: 0,
                    };
                } else {
                    st.counts[0] = 0;
                    d.kind = DecisionKind::Finish { depth: 1 };
                }
            }
        }
    } else {
        let mut chained = 0u8;
        let mut t = st.current_task;
        while let Some(task) = tables
            .task(t)
            .copied()
            .filter(|rec| rec.valid && rec.end == pc)
        {
            let lid = usize::from(task.loop_id);
            let Some(l) = tables.loop_rec(task.loop_id).copied() else {
                break;
            };
            if st.counts[lid] + 1 < l.limit {
                st.counts[lid] += 1;
                st.index_cur[lid] = st.index_cur[lid].wrapping_add(l.step);
                if let Some(r) = l.index_reg {
                    d.writes.push(r, st.index_cur[lid]);
                }
                st.current_task = task.next_iter;
                d.redirect = Some(l.start);
                d.kind = DecisionKind::Iterate {
                    loop_id: task.loop_id,
                    chained,
                };
                break;
            }
            // Last iteration: reset and chain to the fall-through task.
            st.counts[lid] = 0;
            st.current_task = task.next_fallthru;
            t = task.next_fallthru;
            chained += 1;
            d.kind = DecisionKind::Finish { depth: chained };
        }
    }

    // 3. Loop-entry initialization for the *next* address. (Not guarded
    // on `limit`: data-dependent limits may be written between this entry
    // detection and the first task-end; unused records cannot false-match
    // because `start == 0` only equals `pc + 4` for pc = 0xfffffffc.)
    let next = d.redirect.unwrap_or_else(|| pc.wrapping_add(4));
    for (k, l) in tables.loops().iter().enumerate() {
        if l.start == next && st.counts[k] == 0 {
            st.index_cur[k] = l.init;
            if let Some(r) = l.index_reg {
                d.writes.push(r, l.init);
            }
        }
    }

    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ZolcConfig;
    use crate::tables::{LoopRecord, TaskRecord};
    use zolc_isa::reg;

    /// One loop: body 0x10..=0x1c, 3 iterations, index r5 = 100 + 10*k.
    fn single_loop_tables(config: ZolcConfig) -> ZolcTables {
        let mut t = ZolcTables::new(config);
        t.loops_mut()[0] = LoopRecord {
            init: 100,
            step: 10,
            limit: 3,
            index_reg: Some(reg(5)),
            start: 0x10,
            end: 0x1c,
            flags: 0,
        };
        if t.config().tasks() > 0 {
            t.tasks_mut()[0] = TaskRecord {
                end: 0x1c,
                loop_id: 0,
                next_iter: 0,
                next_fallthru: TASK_NONE,
                valid: true,
                flags: 0,
            };
        }
        t
    }

    fn active_state() -> DynState {
        DynState {
            active: true,
            current_task: 0,
            ..DynState::default()
        }
    }

    #[test]
    fn inactive_controller_never_decides() {
        let t = single_loop_tables(ZolcConfig::lite());
        let mut st = DynState::default();
        let d = decide(&t, &mut st, 0x1c);
        assert!(d.is_trivial());
    }

    #[test]
    fn entry_initialization_rides_the_preceding_instruction() {
        let t = single_loop_tables(ZolcConfig::lite());
        let mut st = active_state();
        // fetching 0x0c (pc+4 == 0x10 == loop start) initializes the index
        let d = decide(&t, &mut st, 0x0c);
        assert_eq!(d.redirect, None);
        assert_eq!(d.writes.value_for(reg(5)), Some(100));
        assert_eq!(st.index_cur[0], 100);
    }

    #[test]
    fn iterate_then_finish() {
        let t = single_loop_tables(ZolcConfig::lite());
        let mut st = active_state();
        decide(&t, &mut st, 0x0c); // entry init

        // end of iteration 0: iterate, index 110, redirect to start
        let d1 = decide(&t, &mut st, 0x1c);
        assert_eq!(d1.redirect, Some(0x10));
        assert_eq!(d1.writes.value_for(reg(5)), Some(110));
        assert_eq!(st.counts[0], 1);
        assert!(matches!(d1.kind, DecisionKind::Iterate { loop_id: 0, .. }));

        // end of iteration 1: iterate, index 120
        let d2 = decide(&t, &mut st, 0x1c);
        assert_eq!(d2.writes.value_for(reg(5)), Some(120));

        // end of iteration 2 (last): finish, fall through, count resets
        let d3 = decide(&t, &mut st, 0x1c);
        assert_eq!(d3.redirect, None);
        assert!(d3.writes.is_empty());
        assert_eq!(st.counts[0], 0);
        assert_eq!(st.current_task, TASK_NONE);
        assert_eq!(d3.kind, DecisionKind::Finish { depth: 1 });
    }

    #[test]
    fn micro_variant_behaves_like_single_loop() {
        let t = single_loop_tables(ZolcConfig::micro());
        let mut st = active_state();
        decide(&t, &mut st, 0x0c);
        let d1 = decide(&t, &mut st, 0x1c);
        assert_eq!(d1.redirect, Some(0x10));
        decide(&t, &mut st, 0x1c);
        let d3 = decide(&t, &mut st, 0x1c);
        assert_eq!(d3.redirect, None);
        assert_eq!(st.counts[0], 0);
    }

    /// Perfect 2-nest: both loops end at 0x28; inner body 0x10..=0x28 (3x),
    /// outer 2x. Chained completion must handle the inner-finish +
    /// outer-iterate case in a single decision.
    fn perfect_nest_tables() -> ZolcTables {
        let mut t = ZolcTables::new(ZolcConfig::lite());
        t.loops_mut()[0] = LoopRecord {
            init: 0,
            step: 1,
            limit: 3,
            index_reg: Some(reg(6)),
            start: 0x10,
            end: 0x28,
            flags: 0,
        };
        t.loops_mut()[1] = LoopRecord {
            init: 0,
            step: 4,
            limit: 2,
            index_reg: Some(reg(7)),
            start: 0x10, // perfect nest: same body start
            end: 0x28,
            flags: 0,
        };
        t.tasks_mut()[0] = TaskRecord {
            end: 0x28,
            loop_id: 0,
            next_iter: 0,
            next_fallthru: 1,
            valid: true,
            flags: 0,
        };
        t.tasks_mut()[1] = TaskRecord {
            end: 0x28,
            loop_id: 1,
            next_iter: 0,
            next_fallthru: TASK_NONE,
            valid: true,
            flags: 0,
        };
        t
    }

    #[test]
    fn perfect_nest_chains_in_one_decision() {
        let t = perfect_nest_tables();
        let mut st = active_state();
        decide(&t, &mut st, 0x0c); // init both indices (same start, counts 0)
        assert_eq!(st.index_cur[0], 0);
        assert_eq!(st.index_cur[1], 0);

        // inner iterates twice
        for k in 1..3u32 {
            let d = decide(&t, &mut st, 0x28);
            assert_eq!(d.redirect, Some(0x10));
            assert_eq!(d.writes.value_for(reg(6)), Some(k));
        }
        // inner finishes AND outer iterates in the same cycle: redirect to
        // body start, outer index steps to 4, inner index re-initializes.
        let d = decide(&t, &mut st, 0x28);
        assert_eq!(d.redirect, Some(0x10));
        assert_eq!(d.writes.value_for(reg(7)), Some(4));
        assert_eq!(d.writes.value_for(reg(6)), Some(0)); // re-init via step 3
        assert!(matches!(
            d.kind,
            DecisionKind::Iterate {
                loop_id: 1,
                chained: 1
            }
        ));
        assert_eq!(st.counts[0], 0);
        assert_eq!(st.counts[1], 1);
        assert_eq!(st.current_task, 0);

        // run inner again to completion; then both finish at once
        decide(&t, &mut st, 0x28);
        decide(&t, &mut st, 0x28);
        let last = decide(&t, &mut st, 0x28);
        assert_eq!(last.redirect, None);
        assert_eq!(last.kind, DecisionKind::Finish { depth: 2 });
        assert_eq!(st.current_task, TASK_NONE);
        assert_eq!(st.counts, [0; MAX_LOOPS]);
    }

    #[test]
    fn entry_record_retargets_task_and_inits_loops() {
        let mut t = single_loop_tables(ZolcConfig::full());
        {
            let e = &mut t.entries_mut()[0];
            e.addr = 0x40;
            e.task = 0;
            e.init_mask = 0b1;
            e.redirect = 0x10;
            e.valid = true;
        }
        let mut st = DynState {
            active: true,
            current_task: TASK_NONE,
            ..DynState::default()
        };
        let d = decide(&t, &mut st, 0x40);
        assert_eq!(d.kind, DecisionKind::Entry);
        assert_eq!(d.redirect, Some(0x10));
        assert_eq!(d.writes.value_for(reg(5)), Some(100));
        assert_eq!(st.current_task, 0);
    }

    #[test]
    fn zero_limit_loop_degenerates_to_fall_through() {
        let mut t = single_loop_tables(ZolcConfig::lite());
        t.loops_mut()[0].limit = 0;
        let mut st = active_state();
        // the entry rule still initializes the index (the limit may be
        // written later by a data-dependent zwr)…
        let d = decide(&t, &mut st, 0x0c);
        assert_eq!(d.writes.value_for(reg(5)), Some(100));
        // …but end matching falls through without iterating
        let d = decide(&t, &mut st, 0x1c);
        assert_eq!(d.redirect, None);
    }

    #[test]
    fn decision_is_deterministic_replayable() {
        // The same pc sequence applied to two copies of the state yields
        // identical decisions — the property the spec/arch split relies on.
        let t = perfect_nest_tables();
        let mut a = active_state();
        let mut b = active_state();
        for pc in [0x0c, 0x28, 0x28, 0x28, 0x28, 0x28, 0x28, 0x2c, 0x30] {
            let da = decide(&t, &mut a, pc);
            let db = decide(&t, &mut b, pc);
            assert_eq!(da, db);
            assert_eq!(a, b);
        }
    }
}
