//! A perfect-loop-nest controller in the style of the paper's reference
//! \[2\] (Talla, John & Burger: a single-cycle multiple-index update unit).
//!
//! The unit handles exactly one **perfect** loop nest: every level shares
//! the same body (same start and end address), only the innermost level
//! contains instructions. Successive last iterations of nested loops
//! complete in a single cycle — its one advantage — but it cannot express
//! imperfect nests, loop sequences, or multiple entries/exits, and its
//! area grows proportionally to the number of supported levels (the
//! paper's §1 critique). Experiment E5 compares it against the ZOLC.

use zolc_isa::{Reg, ZolcCtl};
use zolc_sim::{ExecEvent, FetchDecision, LoopEngine, RegWrites};

/// One level of the perfect nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfectLevel {
    /// Number of iterations (≥ 1).
    pub limit: u32,
    /// Initial index value.
    pub init: i32,
    /// Index step per iteration.
    pub step: i32,
    /// Index register maintained for this level.
    pub index_reg: Option<Reg>,
}

/// Static description of the nest.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PerfectNestSpec {
    /// First body instruction (shared by all levels).
    pub start: u32,
    /// Last body instruction (shared by all levels).
    pub end: u32,
    /// Levels, **innermost first**.
    pub levels: Vec<PerfectLevel>,
}

#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct NestState {
    active: bool,
    counts: Vec<u32>,
    index_cur: Vec<u32>,
}

/// The perfect-nest baseline controller.
///
/// # Examples
///
/// ```
/// use zolc_core::{PerfectNestController, PerfectNestSpec};
/// use zolc_core::PerfectLevel;
/// use zolc_isa::reg;
///
/// let spec = PerfectNestSpec {
///     start: 0x10,
///     end: 0x18,
///     levels: vec![
///         PerfectLevel { limit: 4, init: 0, step: 1, index_reg: Some(reg(5)) },
///         PerfectLevel { limit: 3, init: 0, step: 1, index_reg: Some(reg(6)) },
///     ],
/// };
/// let ctl = PerfectNestController::new(spec);
/// assert_eq!(ctl.total_iterations(), 12);
/// ```
#[derive(Debug, Clone)]
pub struct PerfectNestController {
    spec: PerfectNestSpec,
    arch: NestState,
    spec_state: NestState,
}

impl PerfectNestController {
    /// Creates a controller for a nest; activate with
    /// [`zolc_isa::ZolcCtl::Activate`] (any task id) or
    /// [`PerfectNestController::activate`].
    pub fn new(spec: PerfectNestSpec) -> PerfectNestController {
        let n = spec.levels.len();
        let st = NestState {
            active: false,
            counts: vec![0; n],
            index_cur: vec![0; n],
        };
        PerfectNestController {
            spec,
            arch: st.clone(),
            spec_state: st,
        }
    }

    /// The nest description.
    pub fn spec(&self) -> &PerfectNestSpec {
        &self.spec
    }

    /// Activates the unit.
    pub fn activate(&mut self) {
        self.arch.active = true;
        self.spec_state = self.arch.clone();
    }

    /// Product of all level limits.
    pub fn total_iterations(&self) -> u64 {
        self.spec
            .levels
            .iter()
            .map(|l| u64::from(l.limit))
            .product()
    }

    /// Combinational area estimate: replicated per-level compare/increment
    /// and index-update slices plus a small control block. This is the
    /// proportional-growth cost structure the paper criticizes in \[2\].
    pub fn equivalent_gates(&self) -> u32 {
        96 + 297 * self.spec.levels.len() as u32
    }

    fn decide(spec: &PerfectNestSpec, st: &mut NestState, pc: u32) -> FetchDecision {
        let mut d = FetchDecision::none();
        if !st.active {
            return d;
        }
        if pc == spec.end {
            // Find the innermost level that still iterates; everything
            // inside it resets — all in one cycle.
            let mut writes = RegWrites::new();
            let mut iterated = false;
            for (k, lvl) in spec.levels.iter().enumerate() {
                if st.counts[k] + 1 < lvl.limit {
                    st.counts[k] += 1;
                    st.index_cur[k] = st.index_cur[k].wrapping_add(lvl.step as u32);
                    if let Some(r) = lvl.index_reg {
                        writes.push(r, st.index_cur[k]);
                    }
                    for inner in 0..k {
                        st.counts[inner] = 0;
                        st.index_cur[inner] = spec.levels[inner].init as u32;
                        if let Some(r) = spec.levels[inner].index_reg {
                            writes.push(r, st.index_cur[inner]);
                        }
                    }
                    iterated = true;
                    break;
                }
            }
            if iterated {
                d.redirect = Some(spec.start);
                d.index_writes = writes;
            } else {
                for (k, lvl) in spec.levels.iter().enumerate() {
                    st.counts[k] = 0;
                    st.index_cur[k] = lvl.init as u32;
                }
                st.active = false; // single-shot nest
            }
        } else if pc.wrapping_add(4) == spec.start && st.counts.iter().all(|&c| c == 0) {
            // Entry: initialize every level's index.
            let mut writes = RegWrites::new();
            for (k, lvl) in spec.levels.iter().enumerate() {
                st.index_cur[k] = lvl.init as u32;
                if let Some(r) = lvl.index_reg {
                    writes.push(r, st.index_cur[k]);
                }
            }
            d.index_writes = writes;
        }
        d
    }
}

impl LoopEngine for PerfectNestController {
    fn on_fetch(&mut self, pc: u32) -> FetchDecision {
        Self::decide(&self.spec, &mut self.spec_state, pc)
    }

    fn on_execute(&mut self, pc: u32, _event: ExecEvent) {
        let _ = Self::decide(&self.spec, &mut self.arch, pc);
    }

    fn exec_zctl(&mut self, op: ZolcCtl) {
        match op {
            ZolcCtl::Activate { .. } => {
                self.arch.active = true;
                self.spec_state = self.arch.clone();
            }
            ZolcCtl::Deactivate | ZolcCtl::Reset => {
                self.arch.active = false;
                for (k, lvl) in self.spec.levels.iter().enumerate() {
                    self.arch.counts[k] = 0;
                    self.arch.index_cur[k] = lvl.init as u32;
                }
                self.spec_state = self.arch.clone();
            }
        }
    }

    fn on_flush(&mut self) {
        self.spec_state = self.arch.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zolc_isa::reg;

    fn two_level() -> PerfectNestController {
        let mut c = PerfectNestController::new(PerfectNestSpec {
            start: 0x10,
            end: 0x18,
            levels: vec![
                PerfectLevel {
                    limit: 2,
                    init: 0,
                    step: 1,
                    index_reg: Some(reg(5)),
                },
                PerfectLevel {
                    limit: 3,
                    init: 0,
                    step: 4,
                    index_reg: Some(reg(6)),
                },
            ],
        });
        c.activate();
        c
    }

    #[test]
    fn iterates_inner_then_outer() {
        let mut c = two_level();
        // entry init
        let d = c.on_fetch(0x0c);
        assert_eq!(d.index_writes.value_for(reg(5)), Some(0));
        c.on_execute(0x0c, ExecEvent::Plain);

        // first end: inner iterates
        let d = c.on_fetch(0x18);
        assert_eq!(d.redirect, Some(0x10));
        assert_eq!(d.index_writes.value_for(reg(5)), Some(1));
        c.on_execute(0x18, ExecEvent::Plain);

        // second end: inner exhausted, outer steps, inner resets (1 cycle)
        let d = c.on_fetch(0x18);
        assert_eq!(d.redirect, Some(0x10));
        assert_eq!(d.index_writes.value_for(reg(6)), Some(4));
        assert_eq!(d.index_writes.value_for(reg(5)), Some(0));
        c.on_execute(0x18, ExecEvent::Plain);
    }

    #[test]
    fn finishes_after_total_iterations() {
        let mut c = two_level();
        c.on_execute(0x0c, ExecEvent::Plain);
        let mut redirects = 0;
        for _ in 0..6 {
            let d = c.on_fetch(0x18);
            c.on_execute(0x18, ExecEvent::Plain);
            if d.redirect.is_some() {
                redirects += 1;
            }
        }
        // 6 total iterations => 5 back-edges, then inactive
        assert_eq!(redirects, 5);
        assert!(!c.arch.active);
        let d = c.on_fetch(0x18);
        assert_eq!(d.redirect, None);
    }

    #[test]
    fn flush_rolls_back_speculation() {
        let mut c = two_level();
        let _ = c.on_fetch(0x18); // speculative iterate
        assert_eq!(c.spec_state.counts[0], 1);
        c.on_flush();
        assert_eq!(c.spec_state.counts[0], 0);
    }

    #[test]
    fn area_grows_with_levels() {
        let c1 = PerfectNestController::new(PerfectNestSpec {
            start: 0,
            end: 0,
            levels: vec![PerfectLevel {
                limit: 1,
                init: 0,
                step: 0,
                index_reg: None,
            }],
        });
        let c2 = two_level();
        assert!(c2.equivalent_gates() > c1.equivalent_gates());
        assert_eq!(c2.total_iterations(), 6);
    }
}
