//! # zolc-core — the zero-overhead loop controller (ZOLC)
//!
//! This crate implements the primary contribution of *Kavvadias &
//! Nikolaidis, "Hardware support for arbitrarily complex loop structures
//! in embedded applications", DATE 2005*: a loop controller that executes
//! arbitrary loop structures — imperfect nests, multiple-entry and
//! multiple-exit loops — with **zero cycle overhead** at every loop
//! boundary.
//!
//! ## Architecture (paper Fig. 1)
//!
//! * [`ZolcTables`] — the storage: loop parameter table, task-switching
//!   LUT and (ZOLCfull) multiple-entry/exit records, written by the `zwr`
//!   instruction in *initialization mode*;
//! * [`decide`] — the task selection unit and index calculation unit: at
//!   the fetch of a task-end instruction it selects the succeeding task
//!   and next PC (chaining through nested completions in a single cycle)
//!   and updates loop indices through a dedicated register-file port;
//! * [`Zolc`] — the controller as a pipeline [`zolc_sim::LoopEngine`],
//!   with speculative/architectural state separation and a consistency
//!   journal;
//! * [`ZolcImage`] — the software-side table description, its validation,
//!   the initialization-sequence generator and a direct loader;
//! * [`area`] — storage/combinational-area/timing models calibrated to the
//!   paper's synthesis results (30/258/642 bytes, 298/4056/4428 gates,
//!   ~170 MHz on 0.13 µm);
//! * [`PerfectNestController`] — the perfect-loop-nest baseline unit in
//!   the style of Talla et al. (the paper's reference \[2\]), used by the
//!   ablation experiments.
//!
//! ## Configurations
//!
//! [`ZolcConfig::micro`] (uZOLC), [`ZolcConfig::lite`] (ZOLClite) and
//! [`ZolcConfig::full`] (ZOLCfull) reproduce the paper's three design
//! points; [`ZolcConfig::custom`] explores others.
//!
//! # Examples
//!
//! Running a ZOLC-controlled loop on the pipeline:
//!
//! ```
//! use zolc_core::{LimitSrc, LoopSpec, TaskSpec, ZolcConfig, ZolcImage, Zolc, TASK_NONE};
//! use zolc_isa::{reg, Asm, Instr, Reg};
//! use zolc_sim::run_program;
//!
//! // sum r3 += r5 for r5 = 0..10, with no loop-control instructions at all
//! let mut a = Asm::new();
//! let start = a.new_label();
//! let end = a.new_label();
//! let image = ZolcImage {
//!     loops: vec![LoopSpec {
//!         init: 0, step: 1, limit: LimitSrc::Const(10),
//!         index_reg: Some(reg(5)),
//!         start: start.into(), end: end.into(),
//!     }],
//!     tasks: vec![TaskSpec { end: end.into(), loop_id: 0, next_iter: 0, next_fallthru: TASK_NONE }],
//!     entries: vec![], exits: vec![], initial_task: 0,
//! };
//! image.emit_init(&mut a, reg(1));
//! a.emit(Instr::Nop); // ≥1 instruction between zctl.on and the body
//! a.bind(start)?;
//! a.emit(Instr::Nop);
//! a.bind(end)?;
//! a.emit(Instr::Add { rd: reg(3), rs: reg(3), rt: reg(5) });
//! a.emit(Instr::Halt);
//! let program = a.finish()?;
//!
//! let mut zolc = Zolc::new(ZolcConfig::lite());
//! let finished = run_program(&program, &mut zolc, 100_000)?;
//! zolc.assert_consistent();
//! assert_eq!(finished.cpu.regs().read(reg(3)), (0..10).sum::<u32>());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
mod config;
mod controller;
mod dynamics;
mod image;
mod perfect;
mod tables;

pub use config::{ConfigError, ZolcConfig, ZolcVariant, MAX_LOOPS, MAX_TASKS, TASK_NONE};
pub use controller::Zolc;
pub use dynamics::{decide, Decision, DecisionKind, DynState};
pub use image::{
    AddrVal, EntrySpec, ExitSpec, ImageError, InitStats, LimitSrc, LoopSpec, TaskSpec, ZolcImage,
};
pub use perfect::{PerfectLevel, PerfectNestController, PerfectNestSpec};
pub use tables::{
    EntryRecord, ExitRecord, LoopRecord, TableError, TaskRecord, WriteEffect, ZolcTables,
};
