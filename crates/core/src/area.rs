//! Storage, combinational-area and timing models (paper §3).
//!
//! The paper reports three synthesis results on a 0.13 µm ASIC process:
//!
//! | config   | storage | combinational area | cycle time |
//! |----------|---------|--------------------|------------|
//! | uZOLC    |  30 B   |  298 equiv. gates  | unaffected |
//! | ZOLClite | 258 B   | 4056 equiv. gates  | unaffected (~170 MHz) |
//! | ZOLCfull | 642 B   | 4428 equiv. gates  | unaffected |
//!
//! This module reproduces those numbers from an explicit **register
//! inventory** (storage) and **component inventory** (combinational area),
//! then extrapolates to custom design points for the ablation studies.
//!
//! # Register inventory (storage)
//!
//! *uZOLC* stores full 32-bit values and needs no base compression:
//! `start(32) end(32) exit(32) init(32) step(32) limit(32) count(32)
//! index_reg(5) ctl(11)` = **240 bits = 30 bytes**. (`exit` holds the
//! precomputed fall-through address so the single-loop unit needs no
//! address adder.)
//!
//! *ZOLClite/full* compress addresses to 16-bit word offsets against a
//! global code base:
//!
//! * loop record: `init(16) step(16) limit(16) count(16) index_reg(5)
//!   start(16) end(16) flags(3)` = **104 bits**;
//! * task entry: `end(16) loop(3) next_iter(5) next_fallthru(5) valid(1)
//!   flags(6)` = **36 bits**;
//! * globals: `code_base(32) mode(2) current_task(5) loop_status(8)
//!   init_cursor(16) flags(17)` = **80 bits**;
//! * entry record: `addr(16) task(5) init_mask(8) redirect(16) valid(1)
//!   pad(2)` = **48 bits**; exit record: `branch(16) task(5)
//!   clear_mask(8) target(16) valid(1) pad(2)` = **48 bits**.
//!
//! ZOLClite = 8·104 + 32·36 + 80 = 2064 bits = **258 bytes**;
//! ZOLCfull adds 8·4 entry + 8·4 exit records = 3072 bits ⇒ **642 bytes**.
//!
//! # Component inventory (combinational area)
//!
//! Gate-equivalent costs are calibrated once against the paper's three
//! design points and then used predictively:
//!
//! * uZOLC: control FSM (38) + one 32-bit loop slice (260: two 32-bit
//!   equality comparators, a 32-bit incrementer, the 32-bit index adder
//!   and the PC mux);
//! * ZOLClite/full: control + chain logic (240) + 297 per 16-bit loop
//!   slice + 45 per task entry (LUT read multiplexing and decode);
//! * ZOLCfull: + 52 for the shared entry/exit address comparator pair +
//!   5 per record (the records multiplex into the shared comparators).

use crate::config::ZolcConfig;
use std::fmt;

// ---- storage widths (bits) --------------------------------------------

/// uZOLC register file: 7 × 32-bit values + 5-bit index reg + 11-bit ctl.
const MICRO_LOOP_BITS: u32 = 7 * 32 + 5 + 11;
/// Narrow loop record bits.
const LOOP_BITS: u32 = 16 + 16 + 16 + 16 + 5 + 16 + 16 + 3;
/// Task entry bits.
const TASK_BITS: u32 = 16 + 3 + 5 + 5 + 1 + 6;
/// Global register bits.
const GLOBAL_BITS: u32 = 32 + 2 + 5 + 8 + 16 + 17;
/// Entry/exit record bits.
const RECORD_BITS: u32 = 48;

// ---- gate-equivalent component costs ----------------------------------

/// Control FSM of the standalone single-loop unit.
const GE_MICRO_CTRL: u32 = 38;
/// One 32-bit loop slice (uZOLC).
const GE_MICRO_LOOP_SLICE: u32 = 260;
/// Control FSM + chained completion logic (multi-loop designs).
const GE_CTRL: u32 = 240;
/// One 16-bit loop slice: start/end/limit comparators, count incrementer,
/// index adder, status logic.
const GE_LOOP_SLICE: u32 = 297;
/// One task entry: LUT read multiplexing + successor decode.
const GE_TASK_SLICE: u32 = 45;
/// Shared entry+exit address comparator pair (present when any records are).
const GE_RECORD_CMP: u32 = 52;
/// Per-record multiplexing into the shared comparators.
const GE_RECORD_SLICE: u32 = 5;

// ---- timing (ns, 0.13 µm) ----------------------------------------------

/// Fetch-path delay through the controller, per component (ns).
const NS_END_COMPARE: f64 = 0.55;
const NS_LUT_READ: f64 = 0.75;
const NS_CHAIN_PER_LOOP: f64 = 0.11;
const NS_TASK_FANIN_PER_ENTRY: f64 = 0.004;
const NS_PC_MUX: f64 = 0.25;
const NS_RECORD_CAM: f64 = 0.30;
/// Base decision logic for the standalone unit.
const NS_MICRO_BASE: f64 = 1.30;

/// Processor datapath critical path on the same process: register-file
/// read, operand bypass, 32-bit ALU, result mux and latch setup — 5.85 ns,
/// i.e. the ~170 MHz the paper reports.
const NS_PROCESSOR_PATH: f64 = 5.85;

/// Storage requirements of a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageReport {
    sections: Vec<(String, u32)>,
}

impl StorageReport {
    /// Total storage in bits.
    pub fn bits(&self) -> u32 {
        self.sections.iter().map(|(_, b)| b).sum()
    }

    /// Total storage in bytes (the paper's metric; bits rounded up).
    pub fn bytes(&self) -> u32 {
        self.bits().div_ceil(8)
    }

    /// Per-section breakdown `(name, bits)`.
    pub fn sections(&self) -> &[(String, u32)] {
        &self.sections
    }
}

impl fmt::Display for StorageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, bits) in &self.sections {
            writeln!(f, "{name:<24} {bits:>6} bits")?;
        }
        write!(
            f,
            "{:<24} {:>6} bits = {} bytes",
            "total",
            self.bits(),
            self.bytes()
        )
    }
}

/// Combinational area of a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatesReport {
    components: Vec<(String, u32)>,
}

impl GatesReport {
    /// Total equivalent gates.
    pub fn total(&self) -> u32 {
        self.components.iter().map(|(_, g)| g).sum()
    }

    /// Per-component breakdown `(name, gate equivalents)`.
    pub fn components(&self) -> &[(String, u32)] {
        &self.components
    }
}

impl fmt::Display for GatesReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, g) in &self.components {
            writeln!(f, "{name:<34} {g:>6} GE")?;
        }
        write!(f, "{:<34} {:>6} GE", "total", self.total())
    }
}

/// Timing estimate of a configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingReport {
    /// Delay of the ZOLC fetch path (end-compare → LUT → chain → PC mux).
    pub zolc_path_ns: f64,
    /// The processor datapath critical path.
    pub processor_path_ns: f64,
}

impl TimingReport {
    /// Whether adding the controller lengthens the processor cycle.
    pub fn limits_cycle_time(&self) -> bool {
        self.zolc_path_ns > self.processor_path_ns
    }

    /// Maximum clock frequency in MHz with the controller attached.
    pub fn fmax_mhz(&self) -> f64 {
        1000.0 / self.zolc_path_ns.max(self.processor_path_ns)
    }

    /// Timing slack of the controller path against the processor cycle.
    pub fn slack_ns(&self) -> f64 {
        self.processor_path_ns - self.zolc_path_ns
    }
}

impl fmt::Display for TimingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "zolc path {:.2} ns, processor path {:.2} ns, fmax {:.0} MHz{}",
            self.zolc_path_ns,
            self.processor_path_ns,
            self.fmax_mhz(),
            if self.limits_cycle_time() {
                " (ZOLC limits cycle time!)"
            } else {
                " (cycle time unaffected)"
            }
        )
    }
}

/// Computes the storage requirements of a configuration.
///
/// # Examples
///
/// ```
/// use zolc_core::{area, ZolcConfig};
/// assert_eq!(area::storage(&ZolcConfig::micro()).bytes(), 30);
/// assert_eq!(area::storage(&ZolcConfig::lite()).bytes(), 258);
/// assert_eq!(area::storage(&ZolcConfig::full()).bytes(), 642);
/// ```
pub fn storage(config: &ZolcConfig) -> StorageReport {
    let mut sections = Vec::new();
    if config.is_wide() {
        sections.push((
            format!("loop records ({} x {MICRO_LOOP_BITS}b)", config.loops()),
            config.loops() as u32 * MICRO_LOOP_BITS,
        ));
    } else {
        sections.push((
            format!("loop records ({} x {LOOP_BITS}b)", config.loops()),
            config.loops() as u32 * LOOP_BITS,
        ));
        sections.push((
            format!("task LUT ({} x {TASK_BITS}b)", config.tasks()),
            config.tasks() as u32 * TASK_BITS,
        ));
        let records = (config.entry_slots() + config.exit_slots()) * config.loops();
        if records > 0 {
            sections.push((
                format!("entry/exit records ({records} x {RECORD_BITS}b)"),
                records as u32 * RECORD_BITS,
            ));
        }
        sections.push(("global registers".to_owned(), GLOBAL_BITS));
    }
    StorageReport { sections }
}

/// Computes the combinational area of a configuration.
///
/// # Examples
///
/// ```
/// use zolc_core::{area, ZolcConfig};
/// assert_eq!(area::gates(&ZolcConfig::micro()).total(), 298);
/// assert_eq!(area::gates(&ZolcConfig::lite()).total(), 4056);
/// assert_eq!(area::gates(&ZolcConfig::full()).total(), 4428);
/// ```
pub fn gates(config: &ZolcConfig) -> GatesReport {
    let mut components = Vec::new();
    if config.is_wide() {
        components.push(("control FSM".to_owned(), GE_MICRO_CTRL));
        components.push((
            format!("32-bit loop slices ({})", config.loops()),
            config.loops() as u32 * GE_MICRO_LOOP_SLICE,
        ));
    } else {
        components.push(("control FSM + chain logic".to_owned(), GE_CTRL));
        components.push((
            format!("16-bit loop slices ({})", config.loops()),
            config.loops() as u32 * GE_LOOP_SLICE,
        ));
        components.push((
            format!("task LUT entries ({})", config.tasks()),
            config.tasks() as u32 * GE_TASK_SLICE,
        ));
        let records = (config.entry_slots() + config.exit_slots()) * config.loops();
        if records > 0 {
            components.push(("shared entry/exit comparators".to_owned(), GE_RECORD_CMP));
            components.push((
                format!("record multiplexing ({records})"),
                records as u32 * GE_RECORD_SLICE,
            ));
        }
    }
    GatesReport { components }
}

/// Estimates the controller's fetch-path timing against the processor's
/// datapath critical path.
///
/// # Examples
///
/// ```
/// use zolc_core::{area, ZolcConfig};
/// let t = area::timing(&ZolcConfig::full());
/// assert!(!t.limits_cycle_time());
/// assert!((t.fmax_mhz() - 170.0).abs() < 2.0);
/// ```
pub fn timing(config: &ZolcConfig) -> TimingReport {
    let zolc_path_ns = if config.is_wide() {
        NS_MICRO_BASE + NS_PC_MUX
    } else {
        let records = ((config.entry_slots() + config.exit_slots()) * config.loops()) as f64;
        NS_END_COMPARE
            + NS_LUT_READ
            + NS_TASK_FANIN_PER_ENTRY * config.tasks() as f64
            + NS_CHAIN_PER_LOOP * config.loops() as f64
            + if records > 0.0 { NS_RECORD_CAM } else { 0.0 }
            + NS_PC_MUX
    };
    TimingReport {
        zolc_path_ns,
        processor_path_ns: NS_PROCESSOR_PATH,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's storage numbers, §3: 30 / 258 / 642 bytes.
    #[test]
    fn storage_matches_paper() {
        assert_eq!(storage(&ZolcConfig::micro()).bytes(), 30);
        assert_eq!(storage(&ZolcConfig::lite()).bytes(), 258);
        assert_eq!(storage(&ZolcConfig::full()).bytes(), 642);
    }

    /// The paper's combinational-area numbers, §3: 298 / 4056 / 4428 GE.
    #[test]
    fn gates_match_paper() {
        assert_eq!(gates(&ZolcConfig::micro()).total(), 298);
        assert_eq!(gates(&ZolcConfig::lite()).total(), 4056);
        assert_eq!(gates(&ZolcConfig::full()).total(), 4428);
    }

    /// §3: "The processor cycle time is not affected due to ZOLC and
    /// corresponds to about 170 MHz on a 0.13 µm ASIC process."
    #[test]
    fn cycle_time_unaffected_at_170mhz() {
        for cfg in [ZolcConfig::micro(), ZolcConfig::lite(), ZolcConfig::full()] {
            let t = timing(&cfg);
            assert!(!t.limits_cycle_time(), "{cfg}: {t}");
            assert!(t.slack_ns() > 0.0);
            assert!((t.fmax_mhz() - 170.9).abs() < 1.0, "fmax {}", t.fmax_mhz());
        }
    }

    #[test]
    fn storage_scales_with_custom_configs() {
        let half = ZolcConfig::custom(4, 16, 0, 0).unwrap();
        let s = storage(&half);
        assert_eq!(s.bits(), 4 * LOOP_BITS + 16 * TASK_BITS + GLOBAL_BITS);
        // monotone in loops
        let bigger = ZolcConfig::custom(8, 16, 0, 0).unwrap();
        assert!(storage(&bigger).bits() > s.bits());
    }

    #[test]
    fn gates_scale_with_records() {
        let no_rec = ZolcConfig::custom(8, 32, 0, 0).unwrap();
        let with_rec = ZolcConfig::custom(8, 32, 4, 4).unwrap();
        assert_eq!(
            gates(&with_rec).total() - gates(&no_rec).total(),
            GE_RECORD_CMP + 64 * GE_RECORD_SLICE
        );
    }

    #[test]
    fn reports_display_breakdown() {
        let s = storage(&ZolcConfig::full());
        let text = s.to_string();
        assert!(text.contains("task LUT"));
        assert!(text.contains("642 bytes"));
        let g = gates(&ZolcConfig::full());
        assert!(g.to_string().contains("GE"));
        assert!(timing(&ZolcConfig::lite()).to_string().contains("MHz"));
    }

    #[test]
    fn section_sums_are_consistent() {
        for cfg in [ZolcConfig::micro(), ZolcConfig::lite(), ZolcConfig::full()] {
            let s = storage(&cfg);
            let sum: u32 = s.sections().iter().map(|(_, b)| b).sum();
            assert_eq!(sum, s.bits());
            let g = gates(&cfg);
            let sum: u32 = g.components().iter().map(|(_, x)| x).sum();
            assert_eq!(sum, g.total());
        }
    }
}
