;; bubble — golden disassembly (regenerate with ZOLC_BLESS=1)

== Baseline ==
0x0000:  addi  r2, r0, 0
0x0004:  addi  r14, r0, 11
0x0008:  addi  r22, r0, 11
0x000c:  sub   r17, r22, r2
0x0010:  addi  r3, r0, 0
0x0014:  add   r16, r17, r0
0x0018:  addi  r24, r3, 1
0x001c:  sll   r24, r24, 2
0x0020:  lui   r25, 0x4
0x0024:  add   r24, r24, r25
0x0028:  lw    r23, 0(r24)
0x002c:  sll   r25, r3, 2
0x0030:  lui   r26, 0x4
0x0034:  add   r25, r25, r26
0x0038:  lw    r24, 0(r25)
0x003c:  slt   r22, r23, r24
0x0040:  beq   r22, r0, 18
0x0044:  sll   r22, r3, 2
0x0048:  lui   r23, 0x4
0x004c:  add   r22, r22, r23
0x0050:  lw    r4, 0(r22)
0x0054:  addi  r23, r3, 1
0x0058:  sll   r23, r23, 2
0x005c:  lui   r24, 0x4
0x0060:  add   r23, r23, r24
0x0064:  lw    r22, 0(r23)
0x0068:  sll   r23, r3, 2
0x006c:  lui   r24, 0x4
0x0070:  add   r23, r23, r24
0x0074:  sw    r22, 0(r23)
0x0078:  addi  r23, r3, 1
0x007c:  sll   r23, r23, 2
0x0080:  lui   r24, 0x4
0x0084:  add   r23, r23, r24
0x0088:  sw    r4, 0(r23)
0x008c:  addi  r3, r3, 1
0x0090:  addi  r16, r16, -1
0x0094:  bne   r16, r0, -32
0x0098:  addi  r2, r2, 1
0x009c:  addi  r14, r14, -1
0x00a0:  bne   r14, r0, -39
0x00a4:  halt

== HwLoop ==
0x0000:  addi  r2, r0, 0
0x0004:  addi  r14, r0, 11
0x0008:  addi  r22, r0, 11
0x000c:  sub   r17, r22, r2
0x0010:  addi  r3, r0, 0
0x0014:  add   r16, r17, r0
0x0018:  addi  r24, r3, 1
0x001c:  sll   r24, r24, 2
0x0020:  lui   r25, 0x4
0x0024:  add   r24, r24, r25
0x0028:  lw    r23, 0(r24)
0x002c:  sll   r25, r3, 2
0x0030:  lui   r26, 0x4
0x0034:  add   r25, r25, r26
0x0038:  lw    r24, 0(r25)
0x003c:  slt   r22, r23, r24
0x0040:  beq   r22, r0, 18
0x0044:  sll   r22, r3, 2
0x0048:  lui   r23, 0x4
0x004c:  add   r22, r22, r23
0x0050:  lw    r4, 0(r22)
0x0054:  addi  r23, r3, 1
0x0058:  sll   r23, r23, 2
0x005c:  lui   r24, 0x4
0x0060:  add   r23, r23, r24
0x0064:  lw    r22, 0(r23)
0x0068:  sll   r23, r3, 2
0x006c:  lui   r24, 0x4
0x0070:  add   r23, r23, r24
0x0074:  sw    r22, 0(r23)
0x0078:  addi  r23, r3, 1
0x007c:  sll   r23, r23, 2
0x0080:  lui   r24, 0x4
0x0084:  add   r23, r23, r24
0x0088:  sw    r4, 0(r23)
0x008c:  addi  r3, r3, 1
0x0090:  dbnz  r16, -31
0x0094:  addi  r2, r2, 1
0x0098:  dbnz  r14, -37
0x009c:  halt

== Zolc-lite ==
0x0000:  zctl.rst
0x0004:  addi  r1, r0, 1
0x0008:  zwr   loop[0].1, r1
0x000c:  addi  r1, r0, 11
0x0010:  zwr   loop[0].2, r1
0x0014:  addi  r1, r0, 2
0x0018:  zwr   loop[0].4, r1
0x001c:  lui   r1, 0x0
0x0020:  ori   r1, r1, 0xb4
0x0024:  zwr   loop[0].5, r1
0x0028:  lui   r1, 0x0
0x002c:  ori   r1, r1, 0x134
0x0030:  zwr   loop[0].6, r1
0x0034:  addi  r1, r0, 1
0x0038:  zwr   loop[1].1, r1
0x003c:  zwr   loop[1].2, r17
0x0040:  addi  r1, r0, 3
0x0044:  zwr   loop[1].4, r1
0x0048:  lui   r1, 0x0
0x004c:  ori   r1, r1, 0xc0
0x0050:  zwr   loop[1].5, r1
0x0054:  lui   r1, 0x0
0x0058:  ori   r1, r1, 0x134
0x005c:  zwr   loop[1].6, r1
0x0060:  lui   r1, 0x0
0x0064:  ori   r1, r1, 0x134
0x0068:  zwr   task[0].0, r1
0x006c:  addi  r1, r0, 1
0x0070:  zwr   task[0].2, r1
0x0074:  addi  r1, r0, 31
0x0078:  zwr   task[0].3, r1
0x007c:  addi  r1, r0, 1
0x0080:  zwr   task[0].4, r1
0x0084:  lui   r1, 0x0
0x0088:  ori   r1, r1, 0x134
0x008c:  zwr   task[1].0, r1
0x0090:  addi  r1, r0, 1
0x0094:  zwr   task[1].1, r1
0x0098:  zwr   task[1].2, r1
0x009c:  addi  r1, r0, 0
0x00a0:  zwr   task[1].3, r1
0x00a4:  addi  r1, r0, 1
0x00a8:  zwr   task[1].4, r1
0x00ac:  zctl.on 1
0x00b0:  nop
0x00b4:  addi  r22, r0, 11
0x00b8:  sub   r17, r22, r2
0x00bc:  zwr   loop[1].2, r17
0x00c0:  addi  r24, r3, 1
0x00c4:  sll   r24, r24, 2
0x00c8:  lui   r25, 0x4
0x00cc:  add   r24, r24, r25
0x00d0:  lw    r23, 0(r24)
0x00d4:  sll   r25, r3, 2
0x00d8:  lui   r26, 0x4
0x00dc:  add   r25, r25, r26
0x00e0:  lw    r24, 0(r25)
0x00e4:  slt   r22, r23, r24
0x00e8:  beq   r22, r0, 18
0x00ec:  sll   r22, r3, 2
0x00f0:  lui   r23, 0x4
0x00f4:  add   r22, r22, r23
0x00f8:  lw    r4, 0(r22)
0x00fc:  addi  r23, r3, 1
0x0100:  sll   r23, r23, 2
0x0104:  lui   r24, 0x4
0x0108:  add   r23, r23, r24
0x010c:  lw    r22, 0(r23)
0x0110:  sll   r23, r3, 2
0x0114:  lui   r24, 0x4
0x0118:  add   r23, r23, r24
0x011c:  sw    r22, 0(r23)
0x0120:  addi  r23, r3, 1
0x0124:  sll   r23, r23, 2
0x0128:  lui   r24, 0x4
0x012c:  add   r23, r23, r24
0x0130:  sw    r4, 0(r23)
0x0134:  nop
0x0138:  halt
