;; mixed — golden disassembly (regenerate with ZOLC_BLESS=1)

== Baseline ==
0x0000:  addi  r3, r0, 16
0x0004:  addi  r24, r0, 1
0x0008:  slt   r22, r24, r3
0x000c:  beq   r22, r0, 16
0x0010:  addi  r2, r0, 0
0x0014:  addi  r14, r0, 16
0x0018:  sll   r24, r2, 2
0x001c:  lui   r25, 0x4
0x0020:  add   r24, r24, r25
0x0024:  lw    r23, 0(r24)
0x0028:  add   r22, r23, r3
0x002c:  sll   r23, r2, 2
0x0030:  lui   r24, 0x4
0x0034:  add   r23, r23, r24
0x0038:  sw    r22, 0(r23)
0x003c:  addi  r2, r2, 1
0x0040:  addi  r14, r14, -1
0x0044:  bne   r14, r0, -12
0x0048:  sra   r3, r3, 1
0x004c:  j     0x4
0x0050:  addi  r2, r0, 0
0x0054:  addi  r14, r0, 16
0x0058:  sll   r24, r2, 2
0x005c:  lui   r25, 0x4
0x0060:  add   r24, r24, r25
0x0064:  lw    r23, 0(r24)
0x0068:  add   r4, r4, r23
0x006c:  addi  r2, r2, 1
0x0070:  addi  r14, r14, -1
0x0074:  bne   r14, r0, -8
0x0078:  halt

== HwLoop ==
0x0000:  addi  r3, r0, 16
0x0004:  addi  r24, r0, 1
0x0008:  slt   r22, r24, r3
0x000c:  beq   r22, r0, 15
0x0010:  addi  r2, r0, 0
0x0014:  addi  r14, r0, 16
0x0018:  sll   r24, r2, 2
0x001c:  lui   r25, 0x4
0x0020:  add   r24, r24, r25
0x0024:  lw    r23, 0(r24)
0x0028:  add   r22, r23, r3
0x002c:  sll   r23, r2, 2
0x0030:  lui   r24, 0x4
0x0034:  add   r23, r23, r24
0x0038:  sw    r22, 0(r23)
0x003c:  addi  r2, r2, 1
0x0040:  dbnz  r14, -11
0x0044:  sra   r3, r3, 1
0x0048:  j     0x4
0x004c:  addi  r2, r0, 0
0x0050:  addi  r14, r0, 16
0x0054:  sll   r24, r2, 2
0x0058:  lui   r25, 0x4
0x005c:  add   r24, r24, r25
0x0060:  lw    r23, 0(r24)
0x0064:  add   r4, r4, r23
0x0068:  addi  r2, r2, 1
0x006c:  dbnz  r14, -7
0x0070:  halt

== Zolc-lite ==
0x0000:  addi  r3, r0, 16
0x0004:  addi  r24, r0, 1
0x0008:  slt   r22, r24, r3
0x000c:  beq   r22, r0, 16
0x0010:  addi  r2, r0, 0
0x0014:  addi  r14, r0, 16
0x0018:  sll   r24, r2, 2
0x001c:  lui   r25, 0x4
0x0020:  add   r24, r24, r25
0x0024:  lw    r23, 0(r24)
0x0028:  add   r22, r23, r3
0x002c:  sll   r23, r2, 2
0x0030:  lui   r24, 0x4
0x0034:  add   r23, r23, r24
0x0038:  sw    r22, 0(r23)
0x003c:  addi  r2, r2, 1
0x0040:  addi  r14, r14, -1
0x0044:  bne   r14, r0, -12
0x0048:  sra   r3, r3, 1
0x004c:  j     0x4
0x0050:  addi  r2, r0, 0
0x0054:  zctl.rst
0x0058:  addi  r1, r0, 16
0x005c:  zwr   loop[0].2, r1
0x0060:  lui   r1, 0x0
0x0064:  ori   r1, r1, 0xa4
0x0068:  zwr   loop[0].5, r1
0x006c:  lui   r1, 0x0
0x0070:  ori   r1, r1, 0xb8
0x0074:  zwr   loop[0].6, r1
0x0078:  lui   r1, 0x0
0x007c:  ori   r1, r1, 0xb8
0x0080:  zwr   task[0].0, r1
0x0084:  addi  r1, r0, 0
0x0088:  zwr   task[0].2, r1
0x008c:  addi  r1, r0, 31
0x0090:  zwr   task[0].3, r1
0x0094:  addi  r1, r0, 1
0x0098:  zwr   task[0].4, r1
0x009c:  zctl.on 0
0x00a0:  nop
0x00a4:  sll   r24, r2, 2
0x00a8:  lui   r25, 0x4
0x00ac:  add   r24, r24, r25
0x00b0:  lw    r23, 0(r24)
0x00b4:  add   r4, r4, r23
0x00b8:  addi  r2, r2, 1
0x00bc:  halt
