;; decay — golden disassembly (regenerate with ZOLC_BLESS=1)

== Baseline ==
0x0000:  addi  r3, r0, 20
0x0004:  addi  r14, r0, 10
0x0008:  addi  r2, r2, 5
0x000c:  addi  r3, r3, -2
0x0010:  addi  r14, r14, -1
0x0014:  bne   r14, r0, -4
0x0018:  halt

== HwLoop ==
0x0000:  addi  r3, r0, 20
0x0004:  addi  r14, r0, 10
0x0008:  addi  r2, r2, 5
0x000c:  addi  r3, r3, -2
0x0010:  dbnz  r14, -3
0x0014:  halt

== Zolc-lite ==
0x0000:  zctl.rst
0x0004:  addi  r1, r0, 20
0x0008:  zwr   loop[0].0, r1
0x000c:  addi  r1, r0, -2
0x0010:  zwr   loop[0].1, r1
0x0014:  addi  r1, r0, 10
0x0018:  zwr   loop[0].2, r1
0x001c:  addi  r1, r0, 3
0x0020:  zwr   loop[0].4, r1
0x0024:  lui   r1, 0x0
0x0028:  ori   r1, r1, 0x68
0x002c:  zwr   loop[0].5, r1
0x0030:  lui   r1, 0x0
0x0034:  ori   r1, r1, 0x68
0x0038:  zwr   loop[0].6, r1
0x003c:  lui   r1, 0x0
0x0040:  ori   r1, r1, 0x68
0x0044:  zwr   task[0].0, r1
0x0048:  addi  r1, r0, 0
0x004c:  zwr   task[0].2, r1
0x0050:  addi  r1, r0, 31
0x0054:  zwr   task[0].3, r1
0x0058:  addi  r1, r0, 1
0x005c:  zwr   task[0].4, r1
0x0060:  zctl.on 0
0x0064:  nop
0x0068:  addi  r2, r2, 5
0x006c:  halt
