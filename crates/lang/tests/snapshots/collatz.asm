;; collatz — golden disassembly (regenerate with ZOLC_BLESS=1)

== Baseline ==
0x0000:  addi  r2, r0, 27
0x0004:  addi  r23, r0, 1
0x0008:  beq   r2, r23, 10
0x000c:  addi  r24, r0, 1
0x0010:  and   r22, r2, r24
0x0014:  beq   r22, r0, 4
0x0018:  addi  r24, r0, 3
0x001c:  mul   r22, r2, r24
0x0020:  addi  r2, r22, 1
0x0024:  j     0x2c
0x0028:  sra   r2, r2, 1
0x002c:  addi  r3, r3, 1
0x0030:  j     0x4
0x0034:  halt

== HwLoop ==
0x0000:  addi  r2, r0, 27
0x0004:  addi  r23, r0, 1
0x0008:  beq   r2, r23, 10
0x000c:  addi  r24, r0, 1
0x0010:  and   r22, r2, r24
0x0014:  beq   r22, r0, 4
0x0018:  addi  r24, r0, 3
0x001c:  mul   r22, r2, r24
0x0020:  addi  r2, r22, 1
0x0024:  j     0x2c
0x0028:  sra   r2, r2, 1
0x002c:  addi  r3, r3, 1
0x0030:  j     0x4
0x0034:  halt

== Zolc-lite ==
0x0000:  addi  r2, r0, 27
0x0004:  addi  r23, r0, 1
0x0008:  beq   r2, r23, 10
0x000c:  addi  r24, r0, 1
0x0010:  and   r22, r2, r24
0x0014:  beq   r22, r0, 4
0x0018:  addi  r24, r0, 3
0x001c:  mul   r22, r2, r24
0x0020:  addi  r2, r22, 1
0x0024:  j     0x2c
0x0028:  sra   r2, r2, 1
0x002c:  addi  r3, r3, 1
0x0030:  j     0x4
0x0034:  halt
