;; maxmin — golden disassembly (regenerate with ZOLC_BLESS=1)

== Baseline ==
0x0000:  addi  r2, r0, 0
0x0004:  addi  r14, r0, 20
0x0008:  addi  r26, r0, 37
0x000c:  mul   r24, r2, r26
0x0010:  addi  r25, r0, 63
0x0014:  and   r23, r24, r25
0x0018:  addi  r22, r23, -31
0x001c:  sll   r23, r2, 2
0x0020:  lui   r24, 0x4
0x0024:  add   r23, r23, r24
0x0028:  sw    r22, 0(r23)
0x002c:  addi  r2, r2, 1
0x0030:  addi  r14, r14, -1
0x0034:  bne   r14, r0, -12
0x0038:  lui   r22, 0x4
0x003c:  lw    r3, 0(r22)
0x0040:  lui   r22, 0x4
0x0044:  lw    r4, 0(r22)
0x0048:  addi  r2, r0, 1
0x004c:  addi  r14, r0, 19
0x0050:  sll   r24, r2, 2
0x0054:  lui   r25, 0x4
0x0058:  add   r24, r24, r25
0x005c:  lw    r23, 0(r24)
0x0060:  slt   r22, r3, r23
0x0064:  beq   r22, r0, 4
0x0068:  sll   r22, r2, 2
0x006c:  lui   r23, 0x4
0x0070:  add   r22, r22, r23
0x0074:  lw    r3, 0(r22)
0x0078:  sll   r24, r2, 2
0x007c:  lui   r25, 0x4
0x0080:  add   r24, r24, r25
0x0084:  lw    r23, 0(r24)
0x0088:  slt   r22, r23, r4
0x008c:  beq   r22, r0, 4
0x0090:  sll   r22, r2, 2
0x0094:  lui   r23, 0x4
0x0098:  add   r22, r22, r23
0x009c:  lw    r4, 0(r22)
0x00a0:  addi  r2, r2, 1
0x00a4:  addi  r14, r14, -1
0x00a8:  bne   r14, r0, -23
0x00ac:  halt

== HwLoop ==
0x0000:  addi  r2, r0, 0
0x0004:  addi  r14, r0, 20
0x0008:  addi  r26, r0, 37
0x000c:  mul   r24, r2, r26
0x0010:  addi  r25, r0, 63
0x0014:  and   r23, r24, r25
0x0018:  addi  r22, r23, -31
0x001c:  sll   r23, r2, 2
0x0020:  lui   r24, 0x4
0x0024:  add   r23, r23, r24
0x0028:  sw    r22, 0(r23)
0x002c:  addi  r2, r2, 1
0x0030:  dbnz  r14, -11
0x0034:  lui   r22, 0x4
0x0038:  lw    r3, 0(r22)
0x003c:  lui   r22, 0x4
0x0040:  lw    r4, 0(r22)
0x0044:  addi  r2, r0, 1
0x0048:  addi  r14, r0, 19
0x004c:  sll   r24, r2, 2
0x0050:  lui   r25, 0x4
0x0054:  add   r24, r24, r25
0x0058:  lw    r23, 0(r24)
0x005c:  slt   r22, r3, r23
0x0060:  beq   r22, r0, 4
0x0064:  sll   r22, r2, 2
0x0068:  lui   r23, 0x4
0x006c:  add   r22, r22, r23
0x0070:  lw    r3, 0(r22)
0x0074:  sll   r24, r2, 2
0x0078:  lui   r25, 0x4
0x007c:  add   r24, r24, r25
0x0080:  lw    r23, 0(r24)
0x0084:  slt   r22, r23, r4
0x0088:  beq   r22, r0, 4
0x008c:  sll   r22, r2, 2
0x0090:  lui   r23, 0x4
0x0094:  add   r22, r22, r23
0x0098:  lw    r4, 0(r22)
0x009c:  addi  r2, r2, 1
0x00a0:  dbnz  r14, -22
0x00a4:  halt

== Zolc-lite ==
0x0000:  addi  r2, r0, 0
0x0004:  zctl.rst
0x0008:  addi  r1, r0, 20
0x000c:  zwr   loop[0].2, r1
0x0010:  lui   r1, 0x0
0x0014:  ori   r1, r1, 0x98
0x0018:  zwr   loop[0].5, r1
0x001c:  lui   r1, 0x0
0x0020:  ori   r1, r1, 0xbc
0x0024:  zwr   loop[0].6, r1
0x0028:  addi  r1, r0, 19
0x002c:  zwr   loop[1].2, r1
0x0030:  lui   r1, 0x0
0x0034:  ori   r1, r1, 0xd4
0x0038:  zwr   loop[1].5, r1
0x003c:  lui   r1, 0x0
0x0040:  ori   r1, r1, 0x124
0x0044:  zwr   loop[1].6, r1
0x0048:  lui   r1, 0x0
0x004c:  ori   r1, r1, 0xbc
0x0050:  zwr   task[0].0, r1
0x0054:  addi  r1, r0, 0
0x0058:  zwr   task[0].2, r1
0x005c:  addi  r1, r0, 1
0x0060:  zwr   task[0].3, r1
0x0064:  zwr   task[0].4, r1
0x0068:  lui   r1, 0x0
0x006c:  ori   r1, r1, 0x124
0x0070:  zwr   task[1].0, r1
0x0074:  addi  r1, r0, 1
0x0078:  zwr   task[1].1, r1
0x007c:  zwr   task[1].2, r1
0x0080:  addi  r1, r0, 31
0x0084:  zwr   task[1].3, r1
0x0088:  addi  r1, r0, 1
0x008c:  zwr   task[1].4, r1
0x0090:  zctl.on 0
0x0094:  nop
0x0098:  addi  r26, r0, 37
0x009c:  mul   r24, r2, r26
0x00a0:  addi  r25, r0, 63
0x00a4:  and   r23, r24, r25
0x00a8:  addi  r22, r23, -31
0x00ac:  sll   r23, r2, 2
0x00b0:  lui   r24, 0x4
0x00b4:  add   r23, r23, r24
0x00b8:  sw    r22, 0(r23)
0x00bc:  addi  r2, r2, 1
0x00c0:  lui   r22, 0x4
0x00c4:  lw    r3, 0(r22)
0x00c8:  lui   r22, 0x4
0x00cc:  lw    r4, 0(r22)
0x00d0:  addi  r2, r0, 1
0x00d4:  sll   r24, r2, 2
0x00d8:  lui   r25, 0x4
0x00dc:  add   r24, r24, r25
0x00e0:  lw    r23, 0(r24)
0x00e4:  slt   r22, r3, r23
0x00e8:  beq   r22, r0, 4
0x00ec:  sll   r22, r2, 2
0x00f0:  lui   r23, 0x4
0x00f4:  add   r22, r22, r23
0x00f8:  lw    r3, 0(r22)
0x00fc:  sll   r24, r2, 2
0x0100:  lui   r25, 0x4
0x0104:  add   r24, r24, r25
0x0108:  lw    r23, 0(r24)
0x010c:  slt   r22, r23, r4
0x0110:  beq   r22, r0, 4
0x0114:  sll   r22, r2, 2
0x0118:  lui   r23, 0x4
0x011c:  add   r22, r22, r23
0x0120:  lw    r4, 0(r22)
0x0124:  addi  r2, r2, 1
0x0128:  halt
