;; popcount — golden disassembly (regenerate with ZOLC_BLESS=1)

== Baseline ==
0x0000:  addi  r2, r0, 0
0x0004:  addi  r14, r0, 8
0x0008:  sll   r22, r2, 2
0x000c:  lui   r23, 0x4
0x0010:  add   r22, r22, r23
0x0014:  lw    r3, 0(r22)
0x0018:  addi  r4, r0, 0
0x001c:  beq   r3, r0, 5
0x0020:  addi  r25, r0, 1
0x0024:  and   r23, r3, r25
0x0028:  add   r4, r4, r23
0x002c:  sra   r3, r3, 1
0x0030:  j     0x1c
0x0034:  sll   r23, r2, 2
0x0038:  lui   r24, 0x4
0x003c:  add   r23, r23, r24
0x0040:  sw    r4, 32(r23)
0x0044:  addi  r2, r2, 1
0x0048:  addi  r14, r14, -1
0x004c:  bne   r14, r0, -18
0x0050:  halt

== HwLoop ==
0x0000:  addi  r2, r0, 0
0x0004:  addi  r14, r0, 8
0x0008:  sll   r22, r2, 2
0x000c:  lui   r23, 0x4
0x0010:  add   r22, r22, r23
0x0014:  lw    r3, 0(r22)
0x0018:  addi  r4, r0, 0
0x001c:  beq   r3, r0, 5
0x0020:  addi  r25, r0, 1
0x0024:  and   r23, r3, r25
0x0028:  add   r4, r4, r23
0x002c:  sra   r3, r3, 1
0x0030:  j     0x1c
0x0034:  sll   r23, r2, 2
0x0038:  lui   r24, 0x4
0x003c:  add   r23, r23, r24
0x0040:  sw    r4, 32(r23)
0x0044:  addi  r2, r2, 1
0x0048:  dbnz  r14, -17
0x004c:  halt

== Zolc-lite ==
0x0000:  zctl.rst
0x0004:  addi  r1, r0, 1
0x0008:  zwr   loop[0].1, r1
0x000c:  addi  r1, r0, 8
0x0010:  zwr   loop[0].2, r1
0x0014:  addi  r1, r0, 2
0x0018:  zwr   loop[0].4, r1
0x001c:  lui   r1, 0x0
0x0020:  ori   r1, r1, 0x60
0x0024:  zwr   loop[0].5, r1
0x0028:  lui   r1, 0x0
0x002c:  ori   r1, r1, 0x98
0x0030:  zwr   loop[0].6, r1
0x0034:  lui   r1, 0x0
0x0038:  ori   r1, r1, 0x98
0x003c:  zwr   task[0].0, r1
0x0040:  addi  r1, r0, 0
0x0044:  zwr   task[0].2, r1
0x0048:  addi  r1, r0, 31
0x004c:  zwr   task[0].3, r1
0x0050:  addi  r1, r0, 1
0x0054:  zwr   task[0].4, r1
0x0058:  zctl.on 0
0x005c:  nop
0x0060:  sll   r22, r2, 2
0x0064:  lui   r23, 0x4
0x0068:  add   r22, r22, r23
0x006c:  lw    r3, 0(r22)
0x0070:  addi  r4, r0, 0
0x0074:  beq   r3, r0, 5
0x0078:  addi  r25, r0, 1
0x007c:  and   r23, r3, r25
0x0080:  add   r4, r4, r23
0x0084:  sra   r3, r3, 1
0x0088:  j     0x74
0x008c:  sll   r23, r2, 2
0x0090:  lui   r24, 0x4
0x0094:  add   r23, r23, r24
0x0098:  sw    r4, 32(r23)
0x009c:  halt
