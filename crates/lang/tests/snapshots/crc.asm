;; crc — golden disassembly (regenerate with ZOLC_BLESS=1)

== Baseline ==
0x0000:  lui   r2, 0x0
0x0004:  ori   r2, r2, 0xffff
0x0008:  addi  r3, r0, 0
0x000c:  addi  r14, r0, 8
0x0010:  sll   r24, r3, 2
0x0014:  lui   r25, 0x4
0x0018:  add   r24, r24, r25
0x001c:  lw    r23, 0(r24)
0x0020:  xor   r2, r2, r23
0x0024:  addi  r4, r0, 0
0x0028:  addi  r16, r0, 8
0x002c:  addi  r24, r0, 1
0x0030:  and   r22, r2, r24
0x0034:  beq   r22, r0, 5
0x0038:  sra   r22, r2, 1
0x003c:  lui   r23, 0x0
0x0040:  ori   r23, r23, 0xa001
0x0044:  xor   r2, r22, r23
0x0048:  j     0x50
0x004c:  sra   r2, r2, 1
0x0050:  addi  r4, r4, 1
0x0054:  addi  r16, r16, -1
0x0058:  bne   r16, r0, -12
0x005c:  addi  r3, r3, 1
0x0060:  addi  r14, r14, -1
0x0064:  bne   r14, r0, -22
0x0068:  halt

== HwLoop ==
0x0000:  lui   r2, 0x0
0x0004:  ori   r2, r2, 0xffff
0x0008:  addi  r3, r0, 0
0x000c:  addi  r14, r0, 8
0x0010:  sll   r24, r3, 2
0x0014:  lui   r25, 0x4
0x0018:  add   r24, r24, r25
0x001c:  lw    r23, 0(r24)
0x0020:  xor   r2, r2, r23
0x0024:  addi  r4, r0, 0
0x0028:  addi  r16, r0, 8
0x002c:  addi  r24, r0, 1
0x0030:  and   r22, r2, r24
0x0034:  beq   r22, r0, 5
0x0038:  sra   r22, r2, 1
0x003c:  lui   r23, 0x0
0x0040:  ori   r23, r23, 0xa001
0x0044:  xor   r2, r22, r23
0x0048:  j     0x50
0x004c:  sra   r2, r2, 1
0x0050:  addi  r4, r4, 1
0x0054:  dbnz  r16, -11
0x0058:  addi  r3, r3, 1
0x005c:  dbnz  r14, -20
0x0060:  halt

== Zolc-lite ==
0x0000:  lui   r2, 0x0
0x0004:  ori   r2, r2, 0xffff
0x0008:  zctl.rst
0x000c:  addi  r1, r0, 1
0x0010:  zwr   loop[0].1, r1
0x0014:  addi  r1, r0, 8
0x0018:  zwr   loop[0].2, r1
0x001c:  addi  r1, r0, 3
0x0020:  zwr   loop[0].4, r1
0x0024:  lui   r1, 0x0
0x0028:  ori   r1, r1, 0xc0
0x002c:  zwr   loop[0].5, r1
0x0030:  lui   r1, 0x0
0x0034:  ori   r1, r1, 0xf8
0x0038:  zwr   loop[0].6, r1
0x003c:  addi  r1, r0, 1
0x0040:  zwr   loop[1].1, r1
0x0044:  addi  r1, r0, 8
0x0048:  zwr   loop[1].2, r1
0x004c:  addi  r1, r0, 4
0x0050:  zwr   loop[1].4, r1
0x0054:  lui   r1, 0x0
0x0058:  ori   r1, r1, 0xd4
0x005c:  zwr   loop[1].5, r1
0x0060:  lui   r1, 0x0
0x0064:  ori   r1, r1, 0xf8
0x0068:  zwr   loop[1].6, r1
0x006c:  lui   r1, 0x0
0x0070:  ori   r1, r1, 0xf8
0x0074:  zwr   task[0].0, r1
0x0078:  addi  r1, r0, 1
0x007c:  zwr   task[0].2, r1
0x0080:  addi  r1, r0, 31
0x0084:  zwr   task[0].3, r1
0x0088:  addi  r1, r0, 1
0x008c:  zwr   task[0].4, r1
0x0090:  lui   r1, 0x0
0x0094:  ori   r1, r1, 0xf8
0x0098:  zwr   task[1].0, r1
0x009c:  addi  r1, r0, 1
0x00a0:  zwr   task[1].1, r1
0x00a4:  zwr   task[1].2, r1
0x00a8:  addi  r1, r0, 0
0x00ac:  zwr   task[1].3, r1
0x00b0:  addi  r1, r0, 1
0x00b4:  zwr   task[1].4, r1
0x00b8:  zctl.on 1
0x00bc:  nop
0x00c0:  sll   r24, r3, 2
0x00c4:  lui   r25, 0x4
0x00c8:  add   r24, r24, r25
0x00cc:  lw    r23, 0(r24)
0x00d0:  xor   r2, r2, r23
0x00d4:  addi  r24, r0, 1
0x00d8:  and   r22, r2, r24
0x00dc:  beq   r22, r0, 5
0x00e0:  sra   r22, r2, 1
0x00e4:  lui   r23, 0x0
0x00e8:  ori   r23, r23, 0xa001
0x00ec:  xor   r2, r22, r23
0x00f0:  j     0xf8
0x00f4:  sra   r2, r2, 1
0x00f8:  nop
0x00fc:  halt
