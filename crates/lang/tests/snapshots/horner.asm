;; horner — golden disassembly (regenerate with ZOLC_BLESS=1)

== Baseline ==
0x0000:  addi  r2, r0, 3
0x0004:  addi  r4, r0, 0
0x0008:  addi  r14, r0, 6
0x000c:  mul   r22, r3, r2
0x0010:  sll   r24, r4, 2
0x0014:  lui   r25, 0x4
0x0018:  add   r24, r24, r25
0x001c:  lw    r23, 0(r24)
0x0020:  add   r3, r22, r23
0x0024:  addi  r4, r4, 1
0x0028:  addi  r14, r14, -1
0x002c:  bne   r14, r0, -9
0x0030:  halt

== HwLoop ==
0x0000:  addi  r2, r0, 3
0x0004:  addi  r4, r0, 0
0x0008:  addi  r14, r0, 6
0x000c:  mul   r22, r3, r2
0x0010:  sll   r24, r4, 2
0x0014:  lui   r25, 0x4
0x0018:  add   r24, r24, r25
0x001c:  lw    r23, 0(r24)
0x0020:  add   r3, r22, r23
0x0024:  addi  r4, r4, 1
0x0028:  dbnz  r14, -8
0x002c:  halt

== Zolc-lite ==
0x0000:  addi  r2, r0, 3
0x0004:  zctl.rst
0x0008:  addi  r1, r0, 1
0x000c:  zwr   loop[0].1, r1
0x0010:  addi  r1, r0, 6
0x0014:  zwr   loop[0].2, r1
0x0018:  addi  r1, r0, 4
0x001c:  zwr   loop[0].4, r1
0x0020:  lui   r1, 0x0
0x0024:  ori   r1, r1, 0x64
0x0028:  zwr   loop[0].5, r1
0x002c:  lui   r1, 0x0
0x0030:  ori   r1, r1, 0x78
0x0034:  zwr   loop[0].6, r1
0x0038:  lui   r1, 0x0
0x003c:  ori   r1, r1, 0x78
0x0040:  zwr   task[0].0, r1
0x0044:  addi  r1, r0, 0
0x0048:  zwr   task[0].2, r1
0x004c:  addi  r1, r0, 31
0x0050:  zwr   task[0].3, r1
0x0054:  addi  r1, r0, 1
0x0058:  zwr   task[0].4, r1
0x005c:  zctl.on 0
0x0060:  nop
0x0064:  mul   r22, r3, r2
0x0068:  sll   r24, r4, 2
0x006c:  lui   r25, 0x4
0x0070:  add   r24, r24, r25
0x0074:  lw    r23, 0(r24)
0x0078:  add   r3, r22, r23
0x007c:  halt
