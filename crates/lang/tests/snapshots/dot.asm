;; dot — golden disassembly (regenerate with ZOLC_BLESS=1)

== Baseline ==
0x0000:  addi  r3, r0, 0
0x0004:  addi  r14, r0, 16
0x0008:  sll   r25, r3, 2
0x000c:  lui   r26, 0x4
0x0010:  add   r25, r25, r26
0x0014:  lw    r24, 0(r25)
0x0018:  sll   r26, r3, 2
0x001c:  lui   r27, 0x4
0x0020:  add   r26, r26, r27
0x0024:  lw    r25, 64(r26)
0x0028:  mul   r23, r24, r25
0x002c:  add   r2, r2, r23
0x0030:  addi  r3, r3, 1
0x0034:  addi  r14, r14, -1
0x0038:  bne   r14, r0, -13
0x003c:  halt

== HwLoop ==
0x0000:  addi  r3, r0, 0
0x0004:  addi  r14, r0, 16
0x0008:  sll   r25, r3, 2
0x000c:  lui   r26, 0x4
0x0010:  add   r25, r25, r26
0x0014:  lw    r24, 0(r25)
0x0018:  sll   r26, r3, 2
0x001c:  lui   r27, 0x4
0x0020:  add   r26, r26, r27
0x0024:  lw    r25, 64(r26)
0x0028:  mul   r23, r24, r25
0x002c:  add   r2, r2, r23
0x0030:  addi  r3, r3, 1
0x0034:  dbnz  r14, -12
0x0038:  halt

== Zolc-lite ==
0x0000:  zctl.rst
0x0004:  addi  r1, r0, 1
0x0008:  zwr   loop[0].1, r1
0x000c:  addi  r1, r0, 16
0x0010:  zwr   loop[0].2, r1
0x0014:  addi  r1, r0, 3
0x0018:  zwr   loop[0].4, r1
0x001c:  lui   r1, 0x0
0x0020:  ori   r1, r1, 0x60
0x0024:  zwr   loop[0].5, r1
0x0028:  lui   r1, 0x0
0x002c:  ori   r1, r1, 0x84
0x0030:  zwr   loop[0].6, r1
0x0034:  lui   r1, 0x0
0x0038:  ori   r1, r1, 0x84
0x003c:  zwr   task[0].0, r1
0x0040:  addi  r1, r0, 0
0x0044:  zwr   task[0].2, r1
0x0048:  addi  r1, r0, 31
0x004c:  zwr   task[0].3, r1
0x0050:  addi  r1, r0, 1
0x0054:  zwr   task[0].4, r1
0x0058:  zctl.on 0
0x005c:  nop
0x0060:  sll   r25, r3, 2
0x0064:  lui   r26, 0x4
0x0068:  add   r25, r25, r26
0x006c:  lw    r24, 0(r25)
0x0070:  sll   r26, r3, 2
0x0074:  lui   r27, 0x4
0x0078:  add   r26, r26, r27
0x007c:  lw    r25, 64(r26)
0x0080:  mul   r23, r24, r25
0x0084:  add   r2, r2, r23
0x0088:  halt
