;; search — golden disassembly (regenerate with ZOLC_BLESS=1)

== Baseline ==
0x0000:  addi  r2, r0, -1
0x0004:  addi  r3, r0, 0
0x0008:  addi  r14, r0, 16
0x000c:  sll   r23, r3, 2
0x0010:  lui   r24, 0x4
0x0014:  add   r23, r23, r24
0x0018:  lw    r22, 0(r23)
0x001c:  addi  r23, r0, 31
0x0020:  bne   r22, r23, 2
0x0024:  add   r2, r3, r0
0x0028:  beq   r0, r0, 3
0x002c:  addi  r3, r3, 1
0x0030:  addi  r14, r14, -1
0x0034:  bne   r14, r0, -11
0x0038:  halt

== HwLoop ==
0x0000:  addi  r2, r0, -1
0x0004:  addi  r3, r0, 0
0x0008:  addi  r14, r0, 16
0x000c:  sll   r23, r3, 2
0x0010:  lui   r24, 0x4
0x0014:  add   r23, r23, r24
0x0018:  lw    r22, 0(r23)
0x001c:  addi  r23, r0, 31
0x0020:  bne   r22, r23, 2
0x0024:  add   r2, r3, r0
0x0028:  beq   r0, r0, 2
0x002c:  addi  r3, r3, 1
0x0030:  dbnz  r14, -10
0x0034:  halt

== Zolc-lite ==
0x0000:  addi  r2, r0, -1
0x0004:  zctl.rst
0x0008:  addi  r1, r0, 1
0x000c:  zwr   loop[0].1, r1
0x0010:  addi  r1, r0, 16
0x0014:  zwr   loop[0].2, r1
0x0018:  addi  r1, r0, 3
0x001c:  zwr   loop[0].4, r1
0x0020:  lui   r1, 0x0
0x0024:  ori   r1, r1, 0x64
0x0028:  zwr   loop[0].5, r1
0x002c:  lui   r1, 0x0
0x0030:  ori   r1, r1, 0x84
0x0034:  zwr   loop[0].6, r1
0x0038:  lui   r1, 0x0
0x003c:  ori   r1, r1, 0x84
0x0040:  zwr   task[0].0, r1
0x0044:  addi  r1, r0, 0
0x0048:  zwr   task[0].2, r1
0x004c:  addi  r1, r0, 31
0x0050:  zwr   task[0].3, r1
0x0054:  addi  r1, r0, 1
0x0058:  zwr   task[0].4, r1
0x005c:  zctl.on 0
0x0060:  nop
0x0064:  sll   r23, r3, 2
0x0068:  lui   r24, 0x4
0x006c:  add   r23, r23, r24
0x0070:  lw    r22, 0(r23)
0x0074:  addi  r23, r0, 31
0x0078:  bne   r22, r23, 2
0x007c:  add   r2, r3, r0
0x0080:  beq   r0, r0, 2
0x0084:  nop
0x0088:  j     0x98
0x008c:  zwr   loop[0].3, r0
0x0090:  zctl.on 31
0x0094:  j     0x88
0x0098:  halt
