;; triangle — golden disassembly (regenerate with ZOLC_BLESS=1)

== Baseline ==
0x0000:  addi  r2, r0, 0
0x0004:  addi  r14, r0, 10
0x0008:  addi  r4, r0, 0
0x000c:  add   r17, r2, r0
0x0010:  addi  r17, r17, 1
0x0014:  addi  r3, r0, 0
0x0018:  add   r16, r17, r0
0x001c:  addi  r23, r3, 1
0x0020:  add   r4, r4, r23
0x0024:  addi  r3, r3, 1
0x0028:  addi  r16, r16, -1
0x002c:  bne   r16, r0, -5
0x0030:  sll   r23, r2, 2
0x0034:  lui   r24, 0x4
0x0038:  add   r23, r23, r24
0x003c:  sw    r4, 0(r23)
0x0040:  addi  r2, r2, 1
0x0044:  addi  r14, r14, -1
0x0048:  bne   r14, r0, -17
0x004c:  halt

== HwLoop ==
0x0000:  addi  r2, r0, 0
0x0004:  addi  r14, r0, 10
0x0008:  addi  r4, r0, 0
0x000c:  add   r17, r2, r0
0x0010:  addi  r17, r17, 1
0x0014:  addi  r3, r0, 0
0x0018:  add   r16, r17, r0
0x001c:  addi  r23, r3, 1
0x0020:  add   r4, r4, r23
0x0024:  addi  r3, r3, 1
0x0028:  dbnz  r16, -4
0x002c:  sll   r23, r2, 2
0x0030:  lui   r24, 0x4
0x0034:  add   r23, r23, r24
0x0038:  sw    r4, 0(r23)
0x003c:  addi  r2, r2, 1
0x0040:  dbnz  r14, -15
0x0044:  halt

== Zolc-lite ==
0x0000:  zctl.rst
0x0004:  addi  r1, r0, 1
0x0008:  zwr   loop[0].1, r1
0x000c:  addi  r1, r0, 10
0x0010:  zwr   loop[0].2, r1
0x0014:  addi  r1, r0, 2
0x0018:  zwr   loop[0].4, r1
0x001c:  lui   r1, 0x0
0x0020:  ori   r1, r1, 0xb4
0x0024:  zwr   loop[0].5, r1
0x0028:  lui   r1, 0x0
0x002c:  ori   r1, r1, 0xdc
0x0030:  zwr   loop[0].6, r1
0x0034:  addi  r1, r0, 1
0x0038:  zwr   loop[1].1, r1
0x003c:  zwr   loop[1].2, r17
0x0040:  addi  r1, r0, 3
0x0044:  zwr   loop[1].4, r1
0x0048:  lui   r1, 0x0
0x004c:  ori   r1, r1, 0xc8
0x0050:  zwr   loop[1].5, r1
0x0054:  lui   r1, 0x0
0x0058:  ori   r1, r1, 0xcc
0x005c:  zwr   loop[1].6, r1
0x0060:  lui   r1, 0x0
0x0064:  ori   r1, r1, 0xdc
0x0068:  zwr   task[0].0, r1
0x006c:  addi  r1, r0, 1
0x0070:  zwr   task[0].2, r1
0x0074:  addi  r1, r0, 31
0x0078:  zwr   task[0].3, r1
0x007c:  addi  r1, r0, 1
0x0080:  zwr   task[0].4, r1
0x0084:  lui   r1, 0x0
0x0088:  ori   r1, r1, 0xcc
0x008c:  zwr   task[1].0, r1
0x0090:  addi  r1, r0, 1
0x0094:  zwr   task[1].1, r1
0x0098:  zwr   task[1].2, r1
0x009c:  addi  r1, r0, 0
0x00a0:  zwr   task[1].3, r1
0x00a4:  addi  r1, r0, 1
0x00a8:  zwr   task[1].4, r1
0x00ac:  zctl.on 1
0x00b0:  nop
0x00b4:  addi  r4, r0, 0
0x00b8:  add   r17, r2, r0
0x00bc:  addi  r17, r17, 1
0x00c0:  zwr   loop[1].2, r17
0x00c4:  nop
0x00c8:  addi  r23, r3, 1
0x00cc:  add   r4, r4, r23
0x00d0:  sll   r23, r2, 2
0x00d4:  lui   r24, 0x4
0x00d8:  add   r23, r23, r24
0x00dc:  sw    r4, 0(r23)
0x00e0:  halt
