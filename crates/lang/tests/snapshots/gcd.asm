;; gcd — golden disassembly (regenerate with ZOLC_BLESS=1)

== Baseline ==
0x0000:  addi  r2, r0, 0
0x0004:  addi  r14, r0, 4
0x0008:  sll   r22, r2, 2
0x000c:  lui   r23, 0x4
0x0010:  add   r22, r22, r23
0x0014:  lw    r3, 0(r22)
0x0018:  sll   r22, r2, 2
0x001c:  lui   r23, 0x4
0x0020:  add   r22, r22, r23
0x0024:  lw    r4, 16(r22)
0x0028:  beq   r3, r4, 6
0x002c:  slt   r22, r4, r3
0x0030:  beq   r22, r0, 2
0x0034:  sub   r3, r3, r4
0x0038:  j     0x40
0x003c:  sub   r4, r4, r3
0x0040:  j     0x28
0x0044:  sll   r23, r2, 2
0x0048:  lui   r24, 0x4
0x004c:  add   r23, r23, r24
0x0050:  sw    r3, 32(r23)
0x0054:  addi  r2, r2, 1
0x0058:  addi  r14, r14, -1
0x005c:  bne   r14, r0, -22
0x0060:  halt

== HwLoop ==
0x0000:  addi  r2, r0, 0
0x0004:  addi  r14, r0, 4
0x0008:  sll   r22, r2, 2
0x000c:  lui   r23, 0x4
0x0010:  add   r22, r22, r23
0x0014:  lw    r3, 0(r22)
0x0018:  sll   r22, r2, 2
0x001c:  lui   r23, 0x4
0x0020:  add   r22, r22, r23
0x0024:  lw    r4, 16(r22)
0x0028:  beq   r3, r4, 6
0x002c:  slt   r22, r4, r3
0x0030:  beq   r22, r0, 2
0x0034:  sub   r3, r3, r4
0x0038:  j     0x40
0x003c:  sub   r4, r4, r3
0x0040:  j     0x28
0x0044:  sll   r23, r2, 2
0x0048:  lui   r24, 0x4
0x004c:  add   r23, r23, r24
0x0050:  sw    r3, 32(r23)
0x0054:  addi  r2, r2, 1
0x0058:  dbnz  r14, -21
0x005c:  halt

== Zolc-lite ==
0x0000:  zctl.rst
0x0004:  addi  r1, r0, 1
0x0008:  zwr   loop[0].1, r1
0x000c:  addi  r1, r0, 4
0x0010:  zwr   loop[0].2, r1
0x0014:  addi  r1, r0, 2
0x0018:  zwr   loop[0].4, r1
0x001c:  lui   r1, 0x0
0x0020:  ori   r1, r1, 0x60
0x0024:  zwr   loop[0].5, r1
0x0028:  lui   r1, 0x0
0x002c:  ori   r1, r1, 0xa8
0x0030:  zwr   loop[0].6, r1
0x0034:  lui   r1, 0x0
0x0038:  ori   r1, r1, 0xa8
0x003c:  zwr   task[0].0, r1
0x0040:  addi  r1, r0, 0
0x0044:  zwr   task[0].2, r1
0x0048:  addi  r1, r0, 31
0x004c:  zwr   task[0].3, r1
0x0050:  addi  r1, r0, 1
0x0054:  zwr   task[0].4, r1
0x0058:  zctl.on 0
0x005c:  nop
0x0060:  sll   r22, r2, 2
0x0064:  lui   r23, 0x4
0x0068:  add   r22, r22, r23
0x006c:  lw    r3, 0(r22)
0x0070:  sll   r22, r2, 2
0x0074:  lui   r23, 0x4
0x0078:  add   r22, r22, r23
0x007c:  lw    r4, 16(r22)
0x0080:  beq   r3, r4, 6
0x0084:  slt   r22, r4, r3
0x0088:  beq   r22, r0, 2
0x008c:  sub   r3, r3, r4
0x0090:  j     0x98
0x0094:  sub   r4, r4, r3
0x0098:  j     0x80
0x009c:  sll   r23, r2, 2
0x00a0:  lui   r24, 0x4
0x00a4:  add   r23, r23, r24
0x00a8:  sw    r3, 32(r23)
0x00ac:  halt
