;; reverse — golden disassembly (regenerate with ZOLC_BLESS=1)

== Baseline ==
0x0000:  addi  r2, r0, 0
0x0004:  addi  r14, r0, 16
0x0008:  mul   r22, r2, r2
0x000c:  sll   r23, r2, 2
0x0010:  lui   r24, 0x4
0x0014:  add   r23, r23, r24
0x0018:  sw    r22, 0(r23)
0x001c:  addi  r2, r2, 1
0x0020:  addi  r14, r14, -1
0x0024:  bne   r14, r0, -8
0x0028:  addi  r2, r0, 0
0x002c:  addi  r14, r0, 8
0x0030:  sll   r22, r2, 2
0x0034:  lui   r23, 0x4
0x0038:  add   r22, r22, r23
0x003c:  lw    r3, 0(r22)
0x0040:  addi  r24, r0, 15
0x0044:  sub   r23, r24, r2
0x0048:  sll   r23, r23, 2
0x004c:  lui   r24, 0x4
0x0050:  add   r23, r23, r24
0x0054:  lw    r22, 0(r23)
0x0058:  sll   r23, r2, 2
0x005c:  lui   r24, 0x4
0x0060:  add   r23, r23, r24
0x0064:  sw    r22, 0(r23)
0x0068:  addi  r24, r0, 15
0x006c:  sub   r23, r24, r2
0x0070:  sll   r23, r23, 2
0x0074:  lui   r24, 0x4
0x0078:  add   r23, r23, r24
0x007c:  sw    r3, 0(r23)
0x0080:  addi  r2, r2, 1
0x0084:  addi  r14, r14, -1
0x0088:  bne   r14, r0, -23
0x008c:  halt

== HwLoop ==
0x0000:  addi  r2, r0, 0
0x0004:  addi  r14, r0, 16
0x0008:  mul   r22, r2, r2
0x000c:  sll   r23, r2, 2
0x0010:  lui   r24, 0x4
0x0014:  add   r23, r23, r24
0x0018:  sw    r22, 0(r23)
0x001c:  addi  r2, r2, 1
0x0020:  dbnz  r14, -7
0x0024:  addi  r2, r0, 0
0x0028:  addi  r14, r0, 8
0x002c:  sll   r22, r2, 2
0x0030:  lui   r23, 0x4
0x0034:  add   r22, r22, r23
0x0038:  lw    r3, 0(r22)
0x003c:  addi  r24, r0, 15
0x0040:  sub   r23, r24, r2
0x0044:  sll   r23, r23, 2
0x0048:  lui   r24, 0x4
0x004c:  add   r23, r23, r24
0x0050:  lw    r22, 0(r23)
0x0054:  sll   r23, r2, 2
0x0058:  lui   r24, 0x4
0x005c:  add   r23, r23, r24
0x0060:  sw    r22, 0(r23)
0x0064:  addi  r24, r0, 15
0x0068:  sub   r23, r24, r2
0x006c:  sll   r23, r23, 2
0x0070:  lui   r24, 0x4
0x0074:  add   r23, r23, r24
0x0078:  sw    r3, 0(r23)
0x007c:  addi  r2, r2, 1
0x0080:  dbnz  r14, -22
0x0084:  halt

== Zolc-lite ==
0x0000:  addi  r2, r0, 0
0x0004:  zctl.rst
0x0008:  addi  r1, r0, 16
0x000c:  zwr   loop[0].2, r1
0x0010:  lui   r1, 0x0
0x0014:  ori   r1, r1, 0x98
0x0018:  zwr   loop[0].5, r1
0x001c:  lui   r1, 0x0
0x0020:  ori   r1, r1, 0xac
0x0024:  zwr   loop[0].6, r1
0x0028:  addi  r1, r0, 8
0x002c:  zwr   loop[1].2, r1
0x0030:  lui   r1, 0x0
0x0034:  ori   r1, r1, 0xb4
0x0038:  zwr   loop[1].5, r1
0x003c:  lui   r1, 0x0
0x0040:  ori   r1, r1, 0x104
0x0044:  zwr   loop[1].6, r1
0x0048:  lui   r1, 0x0
0x004c:  ori   r1, r1, 0xac
0x0050:  zwr   task[0].0, r1
0x0054:  addi  r1, r0, 0
0x0058:  zwr   task[0].2, r1
0x005c:  addi  r1, r0, 1
0x0060:  zwr   task[0].3, r1
0x0064:  zwr   task[0].4, r1
0x0068:  lui   r1, 0x0
0x006c:  ori   r1, r1, 0x104
0x0070:  zwr   task[1].0, r1
0x0074:  addi  r1, r0, 1
0x0078:  zwr   task[1].1, r1
0x007c:  zwr   task[1].2, r1
0x0080:  addi  r1, r0, 31
0x0084:  zwr   task[1].3, r1
0x0088:  addi  r1, r0, 1
0x008c:  zwr   task[1].4, r1
0x0090:  zctl.on 0
0x0094:  nop
0x0098:  mul   r22, r2, r2
0x009c:  sll   r23, r2, 2
0x00a0:  lui   r24, 0x4
0x00a4:  add   r23, r23, r24
0x00a8:  sw    r22, 0(r23)
0x00ac:  addi  r2, r2, 1
0x00b0:  addi  r2, r0, 0
0x00b4:  sll   r22, r2, 2
0x00b8:  lui   r23, 0x4
0x00bc:  add   r22, r22, r23
0x00c0:  lw    r3, 0(r22)
0x00c4:  addi  r24, r0, 15
0x00c8:  sub   r23, r24, r2
0x00cc:  sll   r23, r23, 2
0x00d0:  lui   r24, 0x4
0x00d4:  add   r23, r23, r24
0x00d8:  lw    r22, 0(r23)
0x00dc:  sll   r23, r2, 2
0x00e0:  lui   r24, 0x4
0x00e4:  add   r23, r23, r24
0x00e8:  sw    r22, 0(r23)
0x00ec:  addi  r24, r0, 15
0x00f0:  sub   r23, r24, r2
0x00f4:  sll   r23, r23, 2
0x00f8:  lui   r24, 0x4
0x00fc:  add   r23, r23, r24
0x0100:  sw    r3, 0(r23)
0x0104:  addi  r2, r2, 1
0x0108:  halt
