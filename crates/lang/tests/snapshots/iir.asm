;; iir — golden disassembly (regenerate with ZOLC_BLESS=1)

== Baseline ==
0x0000:  addi  r2, r0, 0
0x0004:  addi  r14, r0, 32
0x0008:  addi  r26, r0, 11
0x000c:  mul   r24, r2, r26
0x0010:  addi  r25, r0, 15
0x0014:  and   r23, r24, r25
0x0018:  addi  r22, r23, -8
0x001c:  sll   r23, r2, 2
0x0020:  lui   r24, 0x4
0x0024:  add   r23, r23, r24
0x0028:  sw    r22, 0(r23)
0x002c:  addi  r2, r2, 1
0x0030:  addi  r14, r14, -1
0x0034:  bne   r14, r0, -12
0x0038:  addi  r3, r0, 0
0x003c:  addi  r14, r0, 32
0x0040:  sll   r25, r3, 2
0x0044:  lui   r26, 0x4
0x0048:  add   r25, r25, r26
0x004c:  lw    r24, 0(r25)
0x0050:  add   r22, r4, r24
0x0054:  sra   r23, r4, 2
0x0058:  sub   r4, r22, r23
0x005c:  sll   r23, r3, 2
0x0060:  lui   r24, 0x4
0x0064:  add   r23, r23, r24
0x0068:  sw    r4, 128(r23)
0x006c:  addi  r3, r3, 1
0x0070:  addi  r14, r14, -1
0x0074:  bne   r14, r0, -14
0x0078:  halt

== HwLoop ==
0x0000:  addi  r2, r0, 0
0x0004:  addi  r14, r0, 32
0x0008:  addi  r26, r0, 11
0x000c:  mul   r24, r2, r26
0x0010:  addi  r25, r0, 15
0x0014:  and   r23, r24, r25
0x0018:  addi  r22, r23, -8
0x001c:  sll   r23, r2, 2
0x0020:  lui   r24, 0x4
0x0024:  add   r23, r23, r24
0x0028:  sw    r22, 0(r23)
0x002c:  addi  r2, r2, 1
0x0030:  dbnz  r14, -11
0x0034:  addi  r3, r0, 0
0x0038:  addi  r14, r0, 32
0x003c:  sll   r25, r3, 2
0x0040:  lui   r26, 0x4
0x0044:  add   r25, r25, r26
0x0048:  lw    r24, 0(r25)
0x004c:  add   r22, r4, r24
0x0050:  sra   r23, r4, 2
0x0054:  sub   r4, r22, r23
0x0058:  sll   r23, r3, 2
0x005c:  lui   r24, 0x4
0x0060:  add   r23, r23, r24
0x0064:  sw    r4, 128(r23)
0x0068:  addi  r3, r3, 1
0x006c:  dbnz  r14, -13
0x0070:  halt

== Zolc-lite ==
0x0000:  zctl.rst
0x0004:  addi  r1, r0, 1
0x0008:  zwr   loop[0].1, r1
0x000c:  addi  r1, r0, 32
0x0010:  zwr   loop[0].2, r1
0x0014:  addi  r1, r0, 2
0x0018:  zwr   loop[0].4, r1
0x001c:  lui   r1, 0x0
0x0020:  ori   r1, r1, 0xb4
0x0024:  zwr   loop[0].5, r1
0x0028:  lui   r1, 0x0
0x002c:  ori   r1, r1, 0xd4
0x0030:  zwr   loop[0].6, r1
0x0034:  addi  r1, r0, 1
0x0038:  zwr   loop[1].1, r1
0x003c:  addi  r1, r0, 32
0x0040:  zwr   loop[1].2, r1
0x0044:  addi  r1, r0, 3
0x0048:  zwr   loop[1].4, r1
0x004c:  lui   r1, 0x0
0x0050:  ori   r1, r1, 0xd8
0x0054:  zwr   loop[1].5, r1
0x0058:  lui   r1, 0x0
0x005c:  ori   r1, r1, 0x100
0x0060:  zwr   loop[1].6, r1
0x0064:  lui   r1, 0x0
0x0068:  ori   r1, r1, 0xd4
0x006c:  zwr   task[0].0, r1
0x0070:  addi  r1, r0, 0
0x0074:  zwr   task[0].2, r1
0x0078:  addi  r1, r0, 1
0x007c:  zwr   task[0].3, r1
0x0080:  zwr   task[0].4, r1
0x0084:  lui   r1, 0x0
0x0088:  ori   r1, r1, 0x100
0x008c:  zwr   task[1].0, r1
0x0090:  addi  r1, r0, 1
0x0094:  zwr   task[1].1, r1
0x0098:  zwr   task[1].2, r1
0x009c:  addi  r1, r0, 31
0x00a0:  zwr   task[1].3, r1
0x00a4:  addi  r1, r0, 1
0x00a8:  zwr   task[1].4, r1
0x00ac:  zctl.on 0
0x00b0:  nop
0x00b4:  addi  r26, r0, 11
0x00b8:  mul   r24, r2, r26
0x00bc:  addi  r25, r0, 15
0x00c0:  and   r23, r24, r25
0x00c4:  addi  r22, r23, -8
0x00c8:  sll   r23, r2, 2
0x00cc:  lui   r24, 0x4
0x00d0:  add   r23, r23, r24
0x00d4:  sw    r22, 0(r23)
0x00d8:  sll   r25, r3, 2
0x00dc:  lui   r26, 0x4
0x00e0:  add   r25, r25, r26
0x00e4:  lw    r24, 0(r25)
0x00e8:  add   r22, r4, r24
0x00ec:  sra   r23, r4, 2
0x00f0:  sub   r4, r22, r23
0x00f4:  sll   r23, r3, 2
0x00f8:  lui   r24, 0x4
0x00fc:  add   r23, r23, r24
0x0100:  sw    r4, 128(r23)
0x0104:  halt
