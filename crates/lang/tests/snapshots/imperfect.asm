;; imperfect — golden disassembly (regenerate with ZOLC_BLESS=1)

== Baseline ==
0x0000:  addi  r2, r0, 0
0x0004:  addi  r14, r0, 6
0x0008:  addi  r4, r0, 0
0x000c:  addi  r3, r0, 0
0x0010:  addi  r16, r0, 8
0x0014:  addi  r26, r0, 8
0x0018:  mul   r24, r2, r26
0x001c:  add   r23, r24, r3
0x0020:  addi  r24, r0, 3
0x0024:  mul   r22, r23, r24
0x0028:  addi  r26, r0, 8
0x002c:  mul   r24, r2, r26
0x0030:  add   r23, r24, r3
0x0034:  sll   r23, r23, 2
0x0038:  lui   r24, 0x4
0x003c:  add   r23, r23, r24
0x0040:  sw    r22, 0(r23)
0x0044:  addi  r27, r0, 8
0x0048:  mul   r25, r2, r27
0x004c:  add   r24, r25, r3
0x0050:  sll   r24, r24, 2
0x0054:  lui   r25, 0x4
0x0058:  add   r24, r24, r25
0x005c:  lw    r23, 0(r24)
0x0060:  add   r4, r4, r23
0x0064:  addi  r3, r3, 1
0x0068:  addi  r16, r16, -1
0x006c:  bne   r16, r0, -23
0x0070:  sll   r23, r2, 2
0x0074:  lui   r24, 0x4
0x0078:  add   r23, r23, r24
0x007c:  sw    r4, 192(r23)
0x0080:  addi  r2, r2, 1
0x0084:  addi  r14, r14, -1
0x0088:  bne   r14, r0, -33
0x008c:  halt

== HwLoop ==
0x0000:  addi  r2, r0, 0
0x0004:  addi  r14, r0, 6
0x0008:  addi  r4, r0, 0
0x000c:  addi  r3, r0, 0
0x0010:  addi  r16, r0, 8
0x0014:  addi  r26, r0, 8
0x0018:  mul   r24, r2, r26
0x001c:  add   r23, r24, r3
0x0020:  addi  r24, r0, 3
0x0024:  mul   r22, r23, r24
0x0028:  addi  r26, r0, 8
0x002c:  mul   r24, r2, r26
0x0030:  add   r23, r24, r3
0x0034:  sll   r23, r23, 2
0x0038:  lui   r24, 0x4
0x003c:  add   r23, r23, r24
0x0040:  sw    r22, 0(r23)
0x0044:  addi  r27, r0, 8
0x0048:  mul   r25, r2, r27
0x004c:  add   r24, r25, r3
0x0050:  sll   r24, r24, 2
0x0054:  lui   r25, 0x4
0x0058:  add   r24, r24, r25
0x005c:  lw    r23, 0(r24)
0x0060:  add   r4, r4, r23
0x0064:  addi  r3, r3, 1
0x0068:  dbnz  r16, -22
0x006c:  sll   r23, r2, 2
0x0070:  lui   r24, 0x4
0x0074:  add   r23, r23, r24
0x0078:  sw    r4, 192(r23)
0x007c:  addi  r2, r2, 1
0x0080:  dbnz  r14, -31
0x0084:  halt

== Zolc-lite ==
0x0000:  zctl.rst
0x0004:  addi  r1, r0, 1
0x0008:  zwr   loop[0].1, r1
0x000c:  addi  r1, r0, 6
0x0010:  zwr   loop[0].2, r1
0x0014:  addi  r1, r0, 2
0x0018:  zwr   loop[0].4, r1
0x001c:  lui   r1, 0x0
0x0020:  ori   r1, r1, 0xb8
0x0024:  zwr   loop[0].5, r1
0x0028:  lui   r1, 0x0
0x002c:  ori   r1, r1, 0x118
0x0030:  zwr   loop[0].6, r1
0x0034:  addi  r1, r0, 1
0x0038:  zwr   loop[1].1, r1
0x003c:  addi  r1, r0, 8
0x0040:  zwr   loop[1].2, r1
0x0044:  addi  r1, r0, 3
0x0048:  zwr   loop[1].4, r1
0x004c:  lui   r1, 0x0
0x0050:  ori   r1, r1, 0xbc
0x0054:  zwr   loop[1].5, r1
0x0058:  lui   r1, 0x0
0x005c:  ori   r1, r1, 0x108
0x0060:  zwr   loop[1].6, r1
0x0064:  lui   r1, 0x0
0x0068:  ori   r1, r1, 0x118
0x006c:  zwr   task[0].0, r1
0x0070:  addi  r1, r0, 1
0x0074:  zwr   task[0].2, r1
0x0078:  addi  r1, r0, 31
0x007c:  zwr   task[0].3, r1
0x0080:  addi  r1, r0, 1
0x0084:  zwr   task[0].4, r1
0x0088:  lui   r1, 0x0
0x008c:  ori   r1, r1, 0x108
0x0090:  zwr   task[1].0, r1
0x0094:  addi  r1, r0, 1
0x0098:  zwr   task[1].1, r1
0x009c:  zwr   task[1].2, r1
0x00a0:  addi  r1, r0, 0
0x00a4:  zwr   task[1].3, r1
0x00a8:  addi  r1, r0, 1
0x00ac:  zwr   task[1].4, r1
0x00b0:  zctl.on 1
0x00b4:  nop
0x00b8:  addi  r4, r0, 0
0x00bc:  addi  r26, r0, 8
0x00c0:  mul   r24, r2, r26
0x00c4:  add   r23, r24, r3
0x00c8:  addi  r24, r0, 3
0x00cc:  mul   r22, r23, r24
0x00d0:  addi  r26, r0, 8
0x00d4:  mul   r24, r2, r26
0x00d8:  add   r23, r24, r3
0x00dc:  sll   r23, r23, 2
0x00e0:  lui   r24, 0x4
0x00e4:  add   r23, r23, r24
0x00e8:  sw    r22, 0(r23)
0x00ec:  addi  r27, r0, 8
0x00f0:  mul   r25, r2, r27
0x00f4:  add   r24, r25, r3
0x00f8:  sll   r24, r24, 2
0x00fc:  lui   r25, 0x4
0x0100:  add   r24, r24, r25
0x0104:  lw    r23, 0(r24)
0x0108:  add   r4, r4, r23
0x010c:  sll   r23, r2, 2
0x0110:  lui   r24, 0x4
0x0114:  add   r23, r23, r24
0x0118:  sw    r4, 192(r23)
0x011c:  halt
