;; movavg — golden disassembly (regenerate with ZOLC_BLESS=1)

== Baseline ==
0x0000:  addi  r2, r0, 0
0x0004:  addi  r14, r0, 24
0x0008:  addi  r26, r0, 9
0x000c:  mul   r24, r2, r26
0x0010:  addi  r25, r0, 31
0x0014:  and   r23, r24, r25
0x0018:  addi  r22, r23, -7
0x001c:  sll   r23, r2, 2
0x0020:  lui   r24, 0x4
0x0024:  add   r23, r23, r24
0x0028:  sw    r22, 0(r23)
0x002c:  addi  r2, r2, 1
0x0030:  addi  r14, r14, -1
0x0034:  bne   r14, r0, -12
0x0038:  addi  r2, r0, 3
0x003c:  addi  r14, r0, 21
0x0040:  addi  r4, r0, 0
0x0044:  addi  r3, r0, 0
0x0048:  addi  r16, r0, 4
0x004c:  sub   r24, r2, r3
0x0050:  sll   r24, r24, 2
0x0054:  lui   r25, 0x4
0x0058:  add   r24, r24, r25
0x005c:  lw    r23, 0(r24)
0x0060:  add   r4, r4, r23
0x0064:  addi  r3, r3, 1
0x0068:  addi  r16, r16, -1
0x006c:  bne   r16, r0, -9
0x0070:  sra   r22, r4, 2
0x0074:  sll   r23, r2, 2
0x0078:  lui   r24, 0x4
0x007c:  add   r23, r23, r24
0x0080:  sw    r22, 96(r23)
0x0084:  addi  r2, r2, 1
0x0088:  addi  r14, r14, -1
0x008c:  bne   r14, r0, -20
0x0090:  halt

== HwLoop ==
0x0000:  addi  r2, r0, 0
0x0004:  addi  r14, r0, 24
0x0008:  addi  r26, r0, 9
0x000c:  mul   r24, r2, r26
0x0010:  addi  r25, r0, 31
0x0014:  and   r23, r24, r25
0x0018:  addi  r22, r23, -7
0x001c:  sll   r23, r2, 2
0x0020:  lui   r24, 0x4
0x0024:  add   r23, r23, r24
0x0028:  sw    r22, 0(r23)
0x002c:  addi  r2, r2, 1
0x0030:  dbnz  r14, -11
0x0034:  addi  r2, r0, 3
0x0038:  addi  r14, r0, 21
0x003c:  addi  r4, r0, 0
0x0040:  addi  r3, r0, 0
0x0044:  addi  r16, r0, 4
0x0048:  sub   r24, r2, r3
0x004c:  sll   r24, r24, 2
0x0050:  lui   r25, 0x4
0x0054:  add   r24, r24, r25
0x0058:  lw    r23, 0(r24)
0x005c:  add   r4, r4, r23
0x0060:  addi  r3, r3, 1
0x0064:  dbnz  r16, -8
0x0068:  sra   r22, r4, 2
0x006c:  sll   r23, r2, 2
0x0070:  lui   r24, 0x4
0x0074:  add   r23, r23, r24
0x0078:  sw    r22, 96(r23)
0x007c:  addi  r2, r2, 1
0x0080:  dbnz  r14, -18
0x0084:  halt

== Zolc-lite ==
0x0000:  addi  r2, r0, 0
0x0004:  zctl.rst
0x0008:  addi  r1, r0, 24
0x000c:  zwr   loop[0].2, r1
0x0010:  lui   r1, 0x0
0x0014:  ori   r1, r1, 0xf4
0x0018:  zwr   loop[0].5, r1
0x001c:  lui   r1, 0x0
0x0020:  ori   r1, r1, 0x118
0x0024:  zwr   loop[0].6, r1
0x0028:  addi  r1, r0, 21
0x002c:  zwr   loop[1].2, r1
0x0030:  lui   r1, 0x0
0x0034:  ori   r1, r1, 0x120
0x0038:  zwr   loop[1].5, r1
0x003c:  lui   r1, 0x0
0x0040:  ori   r1, r1, 0x150
0x0044:  zwr   loop[1].6, r1
0x0048:  addi  r1, r0, 1
0x004c:  zwr   loop[2].1, r1
0x0050:  addi  r1, r0, 4
0x0054:  zwr   loop[2].2, r1
0x0058:  addi  r1, r0, 3
0x005c:  zwr   loop[2].4, r1
0x0060:  lui   r1, 0x0
0x0064:  ori   r1, r1, 0x124
0x0068:  zwr   loop[2].5, r1
0x006c:  lui   r1, 0x0
0x0070:  ori   r1, r1, 0x138
0x0074:  zwr   loop[2].6, r1
0x0078:  lui   r1, 0x0
0x007c:  ori   r1, r1, 0x118
0x0080:  zwr   task[0].0, r1
0x0084:  addi  r1, r0, 0
0x0088:  zwr   task[0].2, r1
0x008c:  addi  r1, r0, 2
0x0090:  zwr   task[0].3, r1
0x0094:  addi  r1, r0, 1
0x0098:  zwr   task[0].4, r1
0x009c:  lui   r1, 0x0
0x00a0:  ori   r1, r1, 0x150
0x00a4:  zwr   task[1].0, r1
0x00a8:  addi  r1, r0, 1
0x00ac:  zwr   task[1].1, r1
0x00b0:  addi  r1, r0, 2
0x00b4:  zwr   task[1].2, r1
0x00b8:  addi  r1, r0, 31
0x00bc:  zwr   task[1].3, r1
0x00c0:  addi  r1, r0, 1
0x00c4:  zwr   task[1].4, r1
0x00c8:  lui   r1, 0x0
0x00cc:  ori   r1, r1, 0x138
0x00d0:  zwr   task[2].0, r1
0x00d4:  addi  r1, r0, 2
0x00d8:  zwr   task[2].1, r1
0x00dc:  zwr   task[2].2, r1
0x00e0:  addi  r1, r0, 1
0x00e4:  zwr   task[2].3, r1
0x00e8:  zwr   task[2].4, r1
0x00ec:  zctl.on 0
0x00f0:  nop
0x00f4:  addi  r26, r0, 9
0x00f8:  mul   r24, r2, r26
0x00fc:  addi  r25, r0, 31
0x0100:  and   r23, r24, r25
0x0104:  addi  r22, r23, -7
0x0108:  sll   r23, r2, 2
0x010c:  lui   r24, 0x4
0x0110:  add   r23, r23, r24
0x0114:  sw    r22, 0(r23)
0x0118:  addi  r2, r2, 1
0x011c:  addi  r2, r0, 3
0x0120:  addi  r4, r0, 0
0x0124:  sub   r24, r2, r3
0x0128:  sll   r24, r24, 2
0x012c:  lui   r25, 0x4
0x0130:  add   r24, r24, r25
0x0134:  lw    r23, 0(r24)
0x0138:  add   r4, r4, r23
0x013c:  sra   r22, r4, 2
0x0140:  sll   r23, r2, 2
0x0144:  lui   r24, 0x4
0x0148:  add   r23, r23, r24
0x014c:  sw    r22, 96(r23)
0x0150:  addi  r2, r2, 1
0x0154:  halt
