;; accum — golden disassembly (regenerate with ZOLC_BLESS=1)

== Baseline ==
0x0000:  addi  r3, r0, 0
0x0004:  addi  r14, r0, 6
0x0008:  addi  r4, r0, 0
0x000c:  addi  r16, r0, 5
0x0010:  addi  r2, r2, 3
0x0014:  addi  r4, r4, 1
0x0018:  addi  r16, r16, -1
0x001c:  bne   r16, r0, -4
0x0020:  addi  r2, r2, 10
0x0024:  lui   r23, 0x4
0x0028:  sw    r2, 0(r23)
0x002c:  addi  r3, r3, 1
0x0030:  addi  r14, r14, -1
0x0034:  bne   r14, r0, -12
0x0038:  halt

== HwLoop ==
0x0000:  addi  r3, r0, 0
0x0004:  addi  r14, r0, 6
0x0008:  addi  r4, r0, 0
0x000c:  addi  r16, r0, 5
0x0010:  addi  r2, r2, 3
0x0014:  addi  r4, r4, 1
0x0018:  dbnz  r16, -3
0x001c:  addi  r2, r2, 10
0x0020:  lui   r23, 0x4
0x0024:  sw    r2, 0(r23)
0x0028:  addi  r3, r3, 1
0x002c:  dbnz  r14, -10
0x0030:  halt

== Zolc-lite ==
0x0000:  zctl.rst
0x0004:  addi  r1, r0, 1
0x0008:  zwr   loop[0].1, r1
0x000c:  addi  r1, r0, 6
0x0010:  zwr   loop[0].2, r1
0x0014:  addi  r1, r0, 3
0x0018:  zwr   loop[0].4, r1
0x001c:  lui   r1, 0x0
0x0020:  ori   r1, r1, 0xb8
0x0024:  zwr   loop[0].5, r1
0x0028:  lui   r1, 0x0
0x002c:  ori   r1, r1, 0xc4
0x0030:  zwr   loop[0].6, r1
0x0034:  addi  r1, r0, 1
0x0038:  zwr   loop[1].1, r1
0x003c:  addi  r1, r0, 5
0x0040:  zwr   loop[1].2, r1
0x0044:  addi  r1, r0, 4
0x0048:  zwr   loop[1].4, r1
0x004c:  lui   r1, 0x0
0x0050:  ori   r1, r1, 0xb8
0x0054:  zwr   loop[1].5, r1
0x0058:  lui   r1, 0x0
0x005c:  ori   r1, r1, 0xb8
0x0060:  zwr   loop[1].6, r1
0x0064:  lui   r1, 0x0
0x0068:  ori   r1, r1, 0xc4
0x006c:  zwr   task[0].0, r1
0x0070:  addi  r1, r0, 1
0x0074:  zwr   task[0].2, r1
0x0078:  addi  r1, r0, 31
0x007c:  zwr   task[0].3, r1
0x0080:  addi  r1, r0, 1
0x0084:  zwr   task[0].4, r1
0x0088:  lui   r1, 0x0
0x008c:  ori   r1, r1, 0xb8
0x0090:  zwr   task[1].0, r1
0x0094:  addi  r1, r0, 1
0x0098:  zwr   task[1].1, r1
0x009c:  zwr   task[1].2, r1
0x00a0:  addi  r1, r0, 0
0x00a4:  zwr   task[1].3, r1
0x00a8:  addi  r1, r0, 1
0x00ac:  zwr   task[1].4, r1
0x00b0:  zctl.on 1
0x00b4:  nop
0x00b8:  addi  r2, r2, 3
0x00bc:  addi  r2, r2, 10
0x00c0:  lui   r23, 0x4
0x00c4:  sw    r2, 0(r23)
0x00c8:  halt
