;; prefix_sum — golden disassembly (regenerate with ZOLC_BLESS=1)

== Baseline ==
0x0000:  addi  r2, r0, 0
0x0004:  addi  r14, r0, 24
0x0008:  addi  r25, r0, 5
0x000c:  mul   r23, r2, r25
0x0010:  addi  r24, r0, 7
0x0014:  and   r22, r23, r24
0x0018:  sll   r23, r2, 2
0x001c:  lui   r24, 0x4
0x0020:  add   r23, r23, r24
0x0024:  sw    r22, 0(r23)
0x0028:  addi  r2, r2, 1
0x002c:  addi  r14, r14, -1
0x0030:  bne   r14, r0, -11
0x0034:  addi  r2, r0, 1
0x0038:  addi  r14, r0, 23
0x003c:  sll   r24, r2, 2
0x0040:  lui   r25, 0x4
0x0044:  add   r24, r24, r25
0x0048:  lw    r23, 0(r24)
0x004c:  addi  r25, r2, -1
0x0050:  sll   r25, r25, 2
0x0054:  lui   r26, 0x4
0x0058:  add   r25, r25, r26
0x005c:  lw    r24, 0(r25)
0x0060:  add   r22, r23, r24
0x0064:  sll   r23, r2, 2
0x0068:  lui   r24, 0x4
0x006c:  add   r23, r23, r24
0x0070:  sw    r22, 0(r23)
0x0074:  addi  r2, r2, 1
0x0078:  addi  r14, r14, -1
0x007c:  bne   r14, r0, -17
0x0080:  halt

== HwLoop ==
0x0000:  addi  r2, r0, 0
0x0004:  addi  r14, r0, 24
0x0008:  addi  r25, r0, 5
0x000c:  mul   r23, r2, r25
0x0010:  addi  r24, r0, 7
0x0014:  and   r22, r23, r24
0x0018:  sll   r23, r2, 2
0x001c:  lui   r24, 0x4
0x0020:  add   r23, r23, r24
0x0024:  sw    r22, 0(r23)
0x0028:  addi  r2, r2, 1
0x002c:  dbnz  r14, -10
0x0030:  addi  r2, r0, 1
0x0034:  addi  r14, r0, 23
0x0038:  sll   r24, r2, 2
0x003c:  lui   r25, 0x4
0x0040:  add   r24, r24, r25
0x0044:  lw    r23, 0(r24)
0x0048:  addi  r25, r2, -1
0x004c:  sll   r25, r25, 2
0x0050:  lui   r26, 0x4
0x0054:  add   r25, r25, r26
0x0058:  lw    r24, 0(r25)
0x005c:  add   r22, r23, r24
0x0060:  sll   r23, r2, 2
0x0064:  lui   r24, 0x4
0x0068:  add   r23, r23, r24
0x006c:  sw    r22, 0(r23)
0x0070:  addi  r2, r2, 1
0x0074:  dbnz  r14, -16
0x0078:  halt

== Zolc-lite ==
0x0000:  addi  r2, r0, 0
0x0004:  zctl.rst
0x0008:  addi  r1, r0, 24
0x000c:  zwr   loop[0].2, r1
0x0010:  lui   r1, 0x0
0x0014:  ori   r1, r1, 0x98
0x0018:  zwr   loop[0].5, r1
0x001c:  lui   r1, 0x0
0x0020:  ori   r1, r1, 0xb8
0x0024:  zwr   loop[0].6, r1
0x0028:  addi  r1, r0, 23
0x002c:  zwr   loop[1].2, r1
0x0030:  lui   r1, 0x0
0x0034:  ori   r1, r1, 0xc0
0x0038:  zwr   loop[1].5, r1
0x003c:  lui   r1, 0x0
0x0040:  ori   r1, r1, 0xf8
0x0044:  zwr   loop[1].6, r1
0x0048:  lui   r1, 0x0
0x004c:  ori   r1, r1, 0xb8
0x0050:  zwr   task[0].0, r1
0x0054:  addi  r1, r0, 0
0x0058:  zwr   task[0].2, r1
0x005c:  addi  r1, r0, 1
0x0060:  zwr   task[0].3, r1
0x0064:  zwr   task[0].4, r1
0x0068:  lui   r1, 0x0
0x006c:  ori   r1, r1, 0xf8
0x0070:  zwr   task[1].0, r1
0x0074:  addi  r1, r0, 1
0x0078:  zwr   task[1].1, r1
0x007c:  zwr   task[1].2, r1
0x0080:  addi  r1, r0, 31
0x0084:  zwr   task[1].3, r1
0x0088:  addi  r1, r0, 1
0x008c:  zwr   task[1].4, r1
0x0090:  zctl.on 0
0x0094:  nop
0x0098:  addi  r25, r0, 5
0x009c:  mul   r23, r2, r25
0x00a0:  addi  r24, r0, 7
0x00a4:  and   r22, r23, r24
0x00a8:  sll   r23, r2, 2
0x00ac:  lui   r24, 0x4
0x00b0:  add   r23, r23, r24
0x00b4:  sw    r22, 0(r23)
0x00b8:  addi  r2, r2, 1
0x00bc:  addi  r2, r0, 1
0x00c0:  sll   r24, r2, 2
0x00c4:  lui   r25, 0x4
0x00c8:  add   r24, r24, r25
0x00cc:  lw    r23, 0(r24)
0x00d0:  addi  r25, r2, -1
0x00d4:  sll   r25, r25, 2
0x00d8:  lui   r26, 0x4
0x00dc:  add   r25, r25, r26
0x00e0:  lw    r24, 0(r25)
0x00e4:  add   r22, r23, r24
0x00e8:  sll   r23, r2, 2
0x00ec:  lui   r24, 0x4
0x00f0:  add   r23, r23, r24
0x00f4:  sw    r22, 0(r23)
0x00f8:  addi  r2, r2, 1
0x00fc:  halt
