;; matmul — golden disassembly (regenerate with ZOLC_BLESS=1)

== Baseline ==
0x0000:  addi  r2, r0, 0
0x0004:  addi  r14, r0, 64
0x0008:  addi  r25, r0, 3
0x000c:  mul   r23, r2, r25
0x0010:  addi  r22, r23, -97
0x0014:  sll   r23, r2, 2
0x0018:  lui   r24, 0x4
0x001c:  add   r23, r23, r24
0x0020:  sw    r22, 0(r23)
0x0024:  addi  r23, r0, 53
0x0028:  addi  r26, r0, 7
0x002c:  mul   r24, r2, r26
0x0030:  sub   r22, r23, r24
0x0034:  sll   r23, r2, 2
0x0038:  lui   r24, 0x4
0x003c:  add   r23, r23, r24
0x0040:  sw    r22, 256(r23)
0x0044:  addi  r2, r2, 1
0x0048:  addi  r14, r14, -1
0x004c:  bne   r14, r0, -18
0x0050:  addi  r2, r0, 0
0x0054:  addi  r14, r0, 8
0x0058:  addi  r3, r0, 0
0x005c:  addi  r16, r0, 8
0x0060:  addi  r5, r0, 0
0x0064:  addi  r4, r0, 0
0x0068:  addi  r18, r0, 8
0x006c:  addi  r28, r0, 8
0x0070:  mul   r26, r2, r28
0x0074:  add   r25, r26, r4
0x0078:  sll   r25, r25, 2
0x007c:  lui   r26, 0x4
0x0080:  add   r25, r25, r26
0x0084:  lw    r24, 0(r25)
0x0088:  addi  r29, r0, 8
0x008c:  mul   r27, r4, r29
0x0090:  add   r26, r27, r3
0x0094:  sll   r26, r26, 2
0x0098:  lui   r27, 0x4
0x009c:  add   r26, r26, r27
0x00a0:  lw    r25, 256(r26)
0x00a4:  mul   r23, r24, r25
0x00a8:  add   r5, r5, r23
0x00ac:  addi  r4, r4, 1
0x00b0:  addi  r18, r18, -1
0x00b4:  bne   r18, r0, -19
0x00b8:  addi  r26, r0, 8
0x00bc:  mul   r24, r2, r26
0x00c0:  add   r23, r24, r3
0x00c4:  sll   r23, r23, 2
0x00c8:  lui   r24, 0x4
0x00cc:  add   r23, r23, r24
0x00d0:  sw    r5, 512(r23)
0x00d4:  addi  r3, r3, 1
0x00d8:  addi  r16, r16, -1
0x00dc:  bne   r16, r0, -32
0x00e0:  addi  r2, r2, 1
0x00e4:  addi  r14, r14, -1
0x00e8:  bne   r14, r0, -37
0x00ec:  halt

== HwLoop ==
0x0000:  addi  r2, r0, 0
0x0004:  addi  r14, r0, 64
0x0008:  addi  r25, r0, 3
0x000c:  mul   r23, r2, r25
0x0010:  addi  r22, r23, -97
0x0014:  sll   r23, r2, 2
0x0018:  lui   r24, 0x4
0x001c:  add   r23, r23, r24
0x0020:  sw    r22, 0(r23)
0x0024:  addi  r23, r0, 53
0x0028:  addi  r26, r0, 7
0x002c:  mul   r24, r2, r26
0x0030:  sub   r22, r23, r24
0x0034:  sll   r23, r2, 2
0x0038:  lui   r24, 0x4
0x003c:  add   r23, r23, r24
0x0040:  sw    r22, 256(r23)
0x0044:  addi  r2, r2, 1
0x0048:  dbnz  r14, -17
0x004c:  addi  r2, r0, 0
0x0050:  addi  r14, r0, 8
0x0054:  addi  r3, r0, 0
0x0058:  addi  r16, r0, 8
0x005c:  addi  r5, r0, 0
0x0060:  addi  r4, r0, 0
0x0064:  addi  r18, r0, 8
0x0068:  addi  r28, r0, 8
0x006c:  mul   r26, r2, r28
0x0070:  add   r25, r26, r4
0x0074:  sll   r25, r25, 2
0x0078:  lui   r26, 0x4
0x007c:  add   r25, r25, r26
0x0080:  lw    r24, 0(r25)
0x0084:  addi  r29, r0, 8
0x0088:  mul   r27, r4, r29
0x008c:  add   r26, r27, r3
0x0090:  sll   r26, r26, 2
0x0094:  lui   r27, 0x4
0x0098:  add   r26, r26, r27
0x009c:  lw    r25, 256(r26)
0x00a0:  mul   r23, r24, r25
0x00a4:  add   r5, r5, r23
0x00a8:  addi  r4, r4, 1
0x00ac:  dbnz  r18, -18
0x00b0:  addi  r26, r0, 8
0x00b4:  mul   r24, r2, r26
0x00b8:  add   r23, r24, r3
0x00bc:  sll   r23, r23, 2
0x00c0:  lui   r24, 0x4
0x00c4:  add   r23, r23, r24
0x00c8:  sw    r5, 512(r23)
0x00cc:  addi  r3, r3, 1
0x00d0:  dbnz  r16, -30
0x00d4:  addi  r2, r2, 1
0x00d8:  dbnz  r14, -34
0x00dc:  halt

== Zolc-lite ==
0x0000:  addi  r2, r0, 0
0x0004:  zctl.rst
0x0008:  addi  r1, r0, 64
0x000c:  zwr   loop[0].2, r1
0x0010:  lui   r1, 0x0
0x0014:  ori   r1, r1, 0x150
0x0018:  zwr   loop[0].5, r1
0x001c:  lui   r1, 0x0
0x0020:  ori   r1, r1, 0x18c
0x0024:  zwr   loop[0].6, r1
0x0028:  addi  r1, r0, 8
0x002c:  zwr   loop[1].2, r1
0x0030:  lui   r1, 0x0
0x0034:  ori   r1, r1, 0x194
0x0038:  zwr   loop[1].5, r1
0x003c:  lui   r1, 0x0
0x0040:  ori   r1, r1, 0x1f4
0x0044:  zwr   loop[1].6, r1
0x0048:  addi  r1, r0, 1
0x004c:  zwr   loop[2].1, r1
0x0050:  addi  r1, r0, 8
0x0054:  zwr   loop[2].2, r1
0x0058:  addi  r1, r0, 3
0x005c:  zwr   loop[2].4, r1
0x0060:  lui   r1, 0x0
0x0064:  ori   r1, r1, 0x194
0x0068:  zwr   loop[2].5, r1
0x006c:  lui   r1, 0x0
0x0070:  ori   r1, r1, 0x1f0
0x0074:  zwr   loop[2].6, r1
0x0078:  addi  r1, r0, 1
0x007c:  zwr   loop[3].1, r1
0x0080:  addi  r1, r0, 8
0x0084:  zwr   loop[3].2, r1
0x0088:  addi  r1, r0, 4
0x008c:  zwr   loop[3].4, r1
0x0090:  lui   r1, 0x0
0x0094:  ori   r1, r1, 0x198
0x0098:  zwr   loop[3].5, r1
0x009c:  lui   r1, 0x0
0x00a0:  ori   r1, r1, 0x1d4
0x00a4:  zwr   loop[3].6, r1
0x00a8:  lui   r1, 0x0
0x00ac:  ori   r1, r1, 0x18c
0x00b0:  zwr   task[0].0, r1
0x00b4:  addi  r1, r0, 0
0x00b8:  zwr   task[0].2, r1
0x00bc:  addi  r1, r0, 3
0x00c0:  zwr   task[0].3, r1
0x00c4:  addi  r1, r0, 1
0x00c8:  zwr   task[0].4, r1
0x00cc:  lui   r1, 0x0
0x00d0:  ori   r1, r1, 0x1f4
0x00d4:  zwr   task[1].0, r1
0x00d8:  addi  r1, r0, 1
0x00dc:  zwr   task[1].1, r1
0x00e0:  addi  r1, r0, 3
0x00e4:  zwr   task[1].2, r1
0x00e8:  addi  r1, r0, 31
0x00ec:  zwr   task[1].3, r1
0x00f0:  addi  r1, r0, 1
0x00f4:  zwr   task[1].4, r1
0x00f8:  lui   r1, 0x0
0x00fc:  ori   r1, r1, 0x1f0
0x0100:  zwr   task[2].0, r1
0x0104:  addi  r1, r0, 2
0x0108:  zwr   task[2].1, r1
0x010c:  addi  r1, r0, 3
0x0110:  zwr   task[2].2, r1
0x0114:  addi  r1, r0, 1
0x0118:  zwr   task[2].3, r1
0x011c:  zwr   task[2].4, r1
0x0120:  lui   r1, 0x0
0x0124:  ori   r1, r1, 0x1d4
0x0128:  zwr   task[3].0, r1
0x012c:  addi  r1, r0, 3
0x0130:  zwr   task[3].1, r1
0x0134:  zwr   task[3].2, r1
0x0138:  addi  r1, r0, 2
0x013c:  zwr   task[3].3, r1
0x0140:  addi  r1, r0, 1
0x0144:  zwr   task[3].4, r1
0x0148:  zctl.on 0
0x014c:  nop
0x0150:  addi  r25, r0, 3
0x0154:  mul   r23, r2, r25
0x0158:  addi  r22, r23, -97
0x015c:  sll   r23, r2, 2
0x0160:  lui   r24, 0x4
0x0164:  add   r23, r23, r24
0x0168:  sw    r22, 0(r23)
0x016c:  addi  r23, r0, 53
0x0170:  addi  r26, r0, 7
0x0174:  mul   r24, r2, r26
0x0178:  sub   r22, r23, r24
0x017c:  sll   r23, r2, 2
0x0180:  lui   r24, 0x4
0x0184:  add   r23, r23, r24
0x0188:  sw    r22, 256(r23)
0x018c:  addi  r2, r2, 1
0x0190:  addi  r2, r0, 0
0x0194:  addi  r5, r0, 0
0x0198:  addi  r28, r0, 8
0x019c:  mul   r26, r2, r28
0x01a0:  add   r25, r26, r4
0x01a4:  sll   r25, r25, 2
0x01a8:  lui   r26, 0x4
0x01ac:  add   r25, r25, r26
0x01b0:  lw    r24, 0(r25)
0x01b4:  addi  r29, r0, 8
0x01b8:  mul   r27, r4, r29
0x01bc:  add   r26, r27, r3
0x01c0:  sll   r26, r26, 2
0x01c4:  lui   r27, 0x4
0x01c8:  add   r26, r26, r27
0x01cc:  lw    r25, 256(r26)
0x01d0:  mul   r23, r24, r25
0x01d4:  add   r5, r5, r23
0x01d8:  addi  r26, r0, 8
0x01dc:  mul   r24, r2, r26
0x01e0:  add   r23, r24, r3
0x01e4:  sll   r23, r23, 2
0x01e8:  lui   r24, 0x4
0x01ec:  add   r23, r23, r24
0x01f0:  sw    r5, 512(r23)
0x01f4:  addi  r2, r2, 1
0x01f8:  halt
