;; me_sad — golden disassembly (regenerate with ZOLC_BLESS=1)

== Baseline ==
0x0000:  addi  r4, r0, 0
0x0004:  addi  r14, r0, 64
0x0008:  addi  r25, r0, 7
0x000c:  mul   r23, r4, r25
0x0010:  addi  r24, r0, 63
0x0014:  and   r22, r23, r24
0x0018:  sll   r23, r4, 2
0x001c:  lui   r24, 0x4
0x0020:  add   r23, r23, r24
0x0024:  sw    r22, 0(r23)
0x0028:  addi  r4, r4, 1
0x002c:  addi  r14, r14, -1
0x0030:  bne   r14, r0, -11
0x0034:  addi  r4, r0, 0
0x0038:  addi  r14, r0, 16
0x003c:  addi  r26, r0, 5
0x0040:  mul   r24, r4, r26
0x0044:  addi  r23, r24, 3
0x0048:  addi  r24, r0, 63
0x004c:  and   r22, r23, r24
0x0050:  sll   r23, r4, 2
0x0054:  lui   r24, 0x4
0x0058:  add   r23, r23, r24
0x005c:  sw    r22, 256(r23)
0x0060:  addi  r4, r4, 1
0x0064:  addi  r14, r14, -1
0x0068:  bne   r14, r0, -12
0x006c:  lui   r7, 0x1
0x0070:  ori   r7, r7, 0x86a0
0x0074:  addi  r2, r0, 0
0x0078:  addi  r14, r0, 4
0x007c:  addi  r3, r0, 0
0x0080:  addi  r16, r0, 4
0x0084:  addi  r6, r0, 0
0x0088:  addi  r4, r0, 0
0x008c:  addi  r18, r0, 4
0x0090:  addi  r5, r0, 0
0x0094:  addi  r20, r0, 4
0x0098:  add   r26, r2, r4
0x009c:  addi  r27, r0, 8
0x00a0:  mul   r25, r26, r27
0x00a4:  add   r24, r25, r3
0x00a8:  add   r23, r24, r5
0x00ac:  sll   r23, r23, 2
0x00b0:  lui   r24, 0x4
0x00b4:  add   r23, r23, r24
0x00b8:  lw    r22, 0(r23)
0x00bc:  addi  r27, r0, 4
0x00c0:  mul   r25, r4, r27
0x00c4:  add   r24, r25, r5
0x00c8:  sll   r24, r24, 2
0x00cc:  lui   r25, 0x4
0x00d0:  add   r24, r24, r25
0x00d4:  lw    r23, 256(r24)
0x00d8:  sub   r10, r22, r23
0x00dc:  bgez  r10, 1
0x00e0:  sub   r10, r0, r10
0x00e4:  add   r6, r6, r10
0x00e8:  addi  r5, r5, 1
0x00ec:  addi  r20, r20, -1
0x00f0:  bne   r20, r0, -23
0x00f4:  addi  r4, r4, 1
0x00f8:  addi  r18, r18, -1
0x00fc:  bne   r18, r0, -28
0x0100:  slt   r22, r6, r7
0x0104:  beq   r22, r0, 3
0x0108:  add   r7, r6, r0
0x010c:  add   r8, r2, r0
0x0110:  add   r9, r3, r0
0x0114:  addi  r3, r3, 1
0x0118:  addi  r16, r16, -1
0x011c:  bne   r16, r0, -39
0x0120:  addi  r2, r2, 1
0x0124:  addi  r14, r14, -1
0x0128:  bne   r14, r0, -44
0x012c:  halt

== HwLoop ==
0x0000:  addi  r4, r0, 0
0x0004:  addi  r14, r0, 64
0x0008:  addi  r25, r0, 7
0x000c:  mul   r23, r4, r25
0x0010:  addi  r24, r0, 63
0x0014:  and   r22, r23, r24
0x0018:  sll   r23, r4, 2
0x001c:  lui   r24, 0x4
0x0020:  add   r23, r23, r24
0x0024:  sw    r22, 0(r23)
0x0028:  addi  r4, r4, 1
0x002c:  dbnz  r14, -10
0x0030:  addi  r4, r0, 0
0x0034:  addi  r14, r0, 16
0x0038:  addi  r26, r0, 5
0x003c:  mul   r24, r4, r26
0x0040:  addi  r23, r24, 3
0x0044:  addi  r24, r0, 63
0x0048:  and   r22, r23, r24
0x004c:  sll   r23, r4, 2
0x0050:  lui   r24, 0x4
0x0054:  add   r23, r23, r24
0x0058:  sw    r22, 256(r23)
0x005c:  addi  r4, r4, 1
0x0060:  dbnz  r14, -11
0x0064:  lui   r7, 0x1
0x0068:  ori   r7, r7, 0x86a0
0x006c:  addi  r2, r0, 0
0x0070:  addi  r14, r0, 4
0x0074:  addi  r3, r0, 0
0x0078:  addi  r16, r0, 4
0x007c:  addi  r6, r0, 0
0x0080:  addi  r4, r0, 0
0x0084:  addi  r18, r0, 4
0x0088:  addi  r5, r0, 0
0x008c:  addi  r20, r0, 4
0x0090:  add   r26, r2, r4
0x0094:  addi  r27, r0, 8
0x0098:  mul   r25, r26, r27
0x009c:  add   r24, r25, r3
0x00a0:  add   r23, r24, r5
0x00a4:  sll   r23, r23, 2
0x00a8:  lui   r24, 0x4
0x00ac:  add   r23, r23, r24
0x00b0:  lw    r22, 0(r23)
0x00b4:  addi  r27, r0, 4
0x00b8:  mul   r25, r4, r27
0x00bc:  add   r24, r25, r5
0x00c0:  sll   r24, r24, 2
0x00c4:  lui   r25, 0x4
0x00c8:  add   r24, r24, r25
0x00cc:  lw    r23, 256(r24)
0x00d0:  sub   r10, r22, r23
0x00d4:  bgez  r10, 1
0x00d8:  sub   r10, r0, r10
0x00dc:  add   r6, r6, r10
0x00e0:  addi  r5, r5, 1
0x00e4:  dbnz  r20, -22
0x00e8:  addi  r4, r4, 1
0x00ec:  dbnz  r18, -26
0x00f0:  slt   r22, r6, r7
0x00f4:  beq   r22, r0, 3
0x00f8:  add   r7, r6, r0
0x00fc:  add   r8, r2, r0
0x0100:  add   r9, r3, r0
0x0104:  addi  r3, r3, 1
0x0108:  dbnz  r16, -36
0x010c:  addi  r2, r2, 1
0x0110:  dbnz  r14, -40
0x0114:  halt

== Zolc-lite ==
0x0000:  addi  r4, r0, 0
0x0004:  zctl.rst
0x0008:  addi  r1, r0, 64
0x000c:  zwr   loop[0].2, r1
0x0010:  lui   r1, 0x0
0x0014:  ori   r1, r1, 0x1f4
0x0018:  zwr   loop[0].5, r1
0x001c:  lui   r1, 0x0
0x0020:  ori   r1, r1, 0x214
0x0024:  zwr   loop[0].6, r1
0x0028:  addi  r1, r0, 16
0x002c:  zwr   loop[1].2, r1
0x0030:  lui   r1, 0x0
0x0034:  ori   r1, r1, 0x21c
0x0038:  zwr   loop[1].5, r1
0x003c:  lui   r1, 0x0
0x0040:  ori   r1, r1, 0x240
0x0044:  zwr   loop[1].6, r1
0x0048:  addi  r1, r0, 1
0x004c:  zwr   loop[2].1, r1
0x0050:  addi  r1, r0, 4
0x0054:  zwr   loop[2].2, r1
0x0058:  addi  r1, r0, 2
0x005c:  zwr   loop[2].4, r1
0x0060:  lui   r1, 0x0
0x0064:  ori   r1, r1, 0x24c
0x0068:  zwr   loop[2].5, r1
0x006c:  lui   r1, 0x0
0x0070:  ori   r1, r1, 0x2bc
0x0074:  zwr   loop[2].6, r1
0x0078:  addi  r1, r0, 1
0x007c:  zwr   loop[3].1, r1
0x0080:  addi  r1, r0, 4
0x0084:  zwr   loop[3].2, r1
0x0088:  addi  r1, r0, 3
0x008c:  zwr   loop[3].4, r1
0x0090:  lui   r1, 0x0
0x0094:  ori   r1, r1, 0x24c
0x0098:  zwr   loop[3].5, r1
0x009c:  lui   r1, 0x0
0x00a0:  ori   r1, r1, 0x2bc
0x00a4:  zwr   loop[3].6, r1
0x00a8:  addi  r1, r0, 4
0x00ac:  zwr   loop[4].2, r1
0x00b0:  lui   r1, 0x0
0x00b4:  ori   r1, r1, 0x254
0x00b8:  zwr   loop[4].5, r1
0x00bc:  lui   r1, 0x0
0x00c0:  ori   r1, r1, 0x2a4
0x00c4:  zwr   loop[4].6, r1
0x00c8:  addi  r1, r0, 1
0x00cc:  zwr   loop[5].1, r1
0x00d0:  addi  r1, r0, 4
0x00d4:  zwr   loop[5].2, r1
0x00d8:  addi  r1, r0, 5
0x00dc:  zwr   loop[5].4, r1
0x00e0:  lui   r1, 0x0
0x00e4:  ori   r1, r1, 0x254
0x00e8:  zwr   loop[5].5, r1
0x00ec:  lui   r1, 0x0
0x00f0:  ori   r1, r1, 0x2a0
0x00f4:  zwr   loop[5].6, r1
0x00f8:  lui   r1, 0x0
0x00fc:  ori   r1, r1, 0x214
0x0100:  zwr   task[0].0, r1
0x0104:  addi  r1, r0, 0
0x0108:  zwr   task[0].2, r1
0x010c:  addi  r1, r0, 1
0x0110:  zwr   task[0].3, r1
0x0114:  zwr   task[0].4, r1
0x0118:  lui   r1, 0x0
0x011c:  ori   r1, r1, 0x240
0x0120:  zwr   task[1].0, r1
0x0124:  addi  r1, r0, 1
0x0128:  zwr   task[1].1, r1
0x012c:  zwr   task[1].2, r1
0x0130:  addi  r1, r0, 5
0x0134:  zwr   task[1].3, r1
0x0138:  addi  r1, r0, 1
0x013c:  zwr   task[1].4, r1
0x0140:  lui   r1, 0x0
0x0144:  ori   r1, r1, 0x2bc
0x0148:  zwr   task[2].0, r1
0x014c:  addi  r1, r0, 2
0x0150:  zwr   task[2].1, r1
0x0154:  addi  r1, r0, 5
0x0158:  zwr   task[2].2, r1
0x015c:  addi  r1, r0, 31
0x0160:  zwr   task[2].3, r1
0x0164:  addi  r1, r0, 1
0x0168:  zwr   task[2].4, r1
0x016c:  lui   r1, 0x0
0x0170:  ori   r1, r1, 0x2bc
0x0174:  zwr   task[3].0, r1
0x0178:  addi  r1, r0, 3
0x017c:  zwr   task[3].1, r1
0x0180:  addi  r1, r0, 5
0x0184:  zwr   task[3].2, r1
0x0188:  addi  r1, r0, 2
0x018c:  zwr   task[3].3, r1
0x0190:  addi  r1, r0, 1
0x0194:  zwr   task[3].4, r1
0x0198:  lui   r1, 0x0
0x019c:  ori   r1, r1, 0x2a4
0x01a0:  zwr   task[4].0, r1
0x01a4:  addi  r1, r0, 4
0x01a8:  zwr   task[4].1, r1
0x01ac:  addi  r1, r0, 5
0x01b0:  zwr   task[4].2, r1
0x01b4:  addi  r1, r0, 3
0x01b8:  zwr   task[4].3, r1
0x01bc:  addi  r1, r0, 1
0x01c0:  zwr   task[4].4, r1
0x01c4:  lui   r1, 0x0
0x01c8:  ori   r1, r1, 0x2a0
0x01cc:  zwr   task[5].0, r1
0x01d0:  addi  r1, r0, 5
0x01d4:  zwr   task[5].1, r1
0x01d8:  zwr   task[5].2, r1
0x01dc:  addi  r1, r0, 4
0x01e0:  zwr   task[5].3, r1
0x01e4:  addi  r1, r0, 1
0x01e8:  zwr   task[5].4, r1
0x01ec:  zctl.on 0
0x01f0:  nop
0x01f4:  addi  r25, r0, 7
0x01f8:  mul   r23, r4, r25
0x01fc:  addi  r24, r0, 63
0x0200:  and   r22, r23, r24
0x0204:  sll   r23, r4, 2
0x0208:  lui   r24, 0x4
0x020c:  add   r23, r23, r24
0x0210:  sw    r22, 0(r23)
0x0214:  addi  r4, r4, 1
0x0218:  addi  r4, r0, 0
0x021c:  addi  r26, r0, 5
0x0220:  mul   r24, r4, r26
0x0224:  addi  r23, r24, 3
0x0228:  addi  r24, r0, 63
0x022c:  and   r22, r23, r24
0x0230:  sll   r23, r4, 2
0x0234:  lui   r24, 0x4
0x0238:  add   r23, r23, r24
0x023c:  sw    r22, 256(r23)
0x0240:  addi  r4, r4, 1
0x0244:  lui   r7, 0x1
0x0248:  ori   r7, r7, 0x86a0
0x024c:  addi  r6, r0, 0
0x0250:  addi  r4, r0, 0
0x0254:  add   r26, r2, r4
0x0258:  addi  r27, r0, 8
0x025c:  mul   r25, r26, r27
0x0260:  add   r24, r25, r3
0x0264:  add   r23, r24, r5
0x0268:  sll   r23, r23, 2
0x026c:  lui   r24, 0x4
0x0270:  add   r23, r23, r24
0x0274:  lw    r22, 0(r23)
0x0278:  addi  r27, r0, 4
0x027c:  mul   r25, r4, r27
0x0280:  add   r24, r25, r5
0x0284:  sll   r24, r24, 2
0x0288:  lui   r25, 0x4
0x028c:  add   r24, r24, r25
0x0290:  lw    r23, 256(r24)
0x0294:  sub   r10, r22, r23
0x0298:  bgez  r10, 1
0x029c:  sub   r10, r0, r10
0x02a0:  add   r6, r6, r10
0x02a4:  addi  r4, r4, 1
0x02a8:  slt   r22, r6, r7
0x02ac:  beq   r22, r0, 3
0x02b0:  add   r7, r6, r0
0x02b4:  add   r8, r2, r0
0x02b8:  add   r9, r3, r0
0x02bc:  nop
0x02c0:  halt
