;; fir — golden disassembly (regenerate with ZOLC_BLESS=1)

== Baseline ==
0x0000:  addi  r2, r0, 0
0x0004:  addi  r14, r0, 40
0x0008:  addi  r26, r0, 3
0x000c:  mul   r24, r2, r26
0x0010:  addi  r23, r24, -40
0x0014:  addi  r24, r0, 31
0x0018:  and   r22, r23, r24
0x001c:  sll   r23, r2, 2
0x0020:  lui   r24, 0x4
0x0024:  add   r23, r23, r24
0x0028:  sw    r22, 0(r23)
0x002c:  addi  r2, r2, 1
0x0030:  addi  r14, r14, -1
0x0034:  bne   r14, r0, -12
0x0038:  addi  r3, r0, 0
0x003c:  addi  r14, r0, 32
0x0040:  addi  r5, r0, 0
0x0044:  addi  r4, r0, 0
0x0048:  addi  r16, r0, 8
0x004c:  sll   r25, r4, 2
0x0050:  lui   r26, 0x4
0x0054:  add   r25, r25, r26
0x0058:  lw    r24, 160(r25)
0x005c:  add   r26, r3, r4
0x0060:  sll   r26, r26, 2
0x0064:  lui   r27, 0x4
0x0068:  add   r26, r26, r27
0x006c:  lw    r25, 0(r26)
0x0070:  mul   r23, r24, r25
0x0074:  add   r5, r5, r23
0x0078:  addi  r4, r4, 1
0x007c:  addi  r16, r16, -1
0x0080:  bne   r16, r0, -14
0x0084:  sll   r23, r3, 2
0x0088:  lui   r24, 0x4
0x008c:  add   r23, r23, r24
0x0090:  sw    r5, 192(r23)
0x0094:  addi  r3, r3, 1
0x0098:  addi  r14, r14, -1
0x009c:  bne   r14, r0, -24
0x00a0:  halt

== HwLoop ==
0x0000:  addi  r2, r0, 0
0x0004:  addi  r14, r0, 40
0x0008:  addi  r26, r0, 3
0x000c:  mul   r24, r2, r26
0x0010:  addi  r23, r24, -40
0x0014:  addi  r24, r0, 31
0x0018:  and   r22, r23, r24
0x001c:  sll   r23, r2, 2
0x0020:  lui   r24, 0x4
0x0024:  add   r23, r23, r24
0x0028:  sw    r22, 0(r23)
0x002c:  addi  r2, r2, 1
0x0030:  dbnz  r14, -11
0x0034:  addi  r3, r0, 0
0x0038:  addi  r14, r0, 32
0x003c:  addi  r5, r0, 0
0x0040:  addi  r4, r0, 0
0x0044:  addi  r16, r0, 8
0x0048:  sll   r25, r4, 2
0x004c:  lui   r26, 0x4
0x0050:  add   r25, r25, r26
0x0054:  lw    r24, 160(r25)
0x0058:  add   r26, r3, r4
0x005c:  sll   r26, r26, 2
0x0060:  lui   r27, 0x4
0x0064:  add   r26, r26, r27
0x0068:  lw    r25, 0(r26)
0x006c:  mul   r23, r24, r25
0x0070:  add   r5, r5, r23
0x0074:  addi  r4, r4, 1
0x0078:  dbnz  r16, -13
0x007c:  sll   r23, r3, 2
0x0080:  lui   r24, 0x4
0x0084:  add   r23, r23, r24
0x0088:  sw    r5, 192(r23)
0x008c:  addi  r3, r3, 1
0x0090:  dbnz  r14, -22
0x0094:  halt

== Zolc-lite ==
0x0000:  zctl.rst
0x0004:  addi  r1, r0, 1
0x0008:  zwr   loop[0].1, r1
0x000c:  addi  r1, r0, 40
0x0010:  zwr   loop[0].2, r1
0x0014:  addi  r1, r0, 2
0x0018:  zwr   loop[0].4, r1
0x001c:  lui   r1, 0x0
0x0020:  ori   r1, r1, 0x110
0x0024:  zwr   loop[0].5, r1
0x0028:  lui   r1, 0x0
0x002c:  ori   r1, r1, 0x130
0x0030:  zwr   loop[0].6, r1
0x0034:  addi  r1, r0, 1
0x0038:  zwr   loop[1].1, r1
0x003c:  addi  r1, r0, 32
0x0040:  zwr   loop[1].2, r1
0x0044:  addi  r1, r0, 3
0x0048:  zwr   loop[1].4, r1
0x004c:  lui   r1, 0x0
0x0050:  ori   r1, r1, 0x134
0x0054:  zwr   loop[1].5, r1
0x0058:  lui   r1, 0x0
0x005c:  ori   r1, r1, 0x170
0x0060:  zwr   loop[1].6, r1
0x0064:  addi  r1, r0, 1
0x0068:  zwr   loop[2].1, r1
0x006c:  addi  r1, r0, 8
0x0070:  zwr   loop[2].2, r1
0x0074:  addi  r1, r0, 4
0x0078:  zwr   loop[2].4, r1
0x007c:  lui   r1, 0x0
0x0080:  ori   r1, r1, 0x138
0x0084:  zwr   loop[2].5, r1
0x0088:  lui   r1, 0x0
0x008c:  ori   r1, r1, 0x160
0x0090:  zwr   loop[2].6, r1
0x0094:  lui   r1, 0x0
0x0098:  ori   r1, r1, 0x130
0x009c:  zwr   task[0].0, r1
0x00a0:  addi  r1, r0, 0
0x00a4:  zwr   task[0].2, r1
0x00a8:  addi  r1, r0, 2
0x00ac:  zwr   task[0].3, r1
0x00b0:  addi  r1, r0, 1
0x00b4:  zwr   task[0].4, r1
0x00b8:  lui   r1, 0x0
0x00bc:  ori   r1, r1, 0x170
0x00c0:  zwr   task[1].0, r1
0x00c4:  addi  r1, r0, 1
0x00c8:  zwr   task[1].1, r1
0x00cc:  addi  r1, r0, 2
0x00d0:  zwr   task[1].2, r1
0x00d4:  addi  r1, r0, 31
0x00d8:  zwr   task[1].3, r1
0x00dc:  addi  r1, r0, 1
0x00e0:  zwr   task[1].4, r1
0x00e4:  lui   r1, 0x0
0x00e8:  ori   r1, r1, 0x160
0x00ec:  zwr   task[2].0, r1
0x00f0:  addi  r1, r0, 2
0x00f4:  zwr   task[2].1, r1
0x00f8:  zwr   task[2].2, r1
0x00fc:  addi  r1, r0, 1
0x0100:  zwr   task[2].3, r1
0x0104:  zwr   task[2].4, r1
0x0108:  zctl.on 0
0x010c:  nop
0x0110:  addi  r26, r0, 3
0x0114:  mul   r24, r2, r26
0x0118:  addi  r23, r24, -40
0x011c:  addi  r24, r0, 31
0x0120:  and   r22, r23, r24
0x0124:  sll   r23, r2, 2
0x0128:  lui   r24, 0x4
0x012c:  add   r23, r23, r24
0x0130:  sw    r22, 0(r23)
0x0134:  addi  r5, r0, 0
0x0138:  sll   r25, r4, 2
0x013c:  lui   r26, 0x4
0x0140:  add   r25, r25, r26
0x0144:  lw    r24, 160(r25)
0x0148:  add   r26, r3, r4
0x014c:  sll   r26, r26, 2
0x0150:  lui   r27, 0x4
0x0154:  add   r26, r26, r27
0x0158:  lw    r25, 0(r26)
0x015c:  mul   r23, r24, r25
0x0160:  add   r5, r5, r23
0x0164:  sll   r23, r3, 2
0x0168:  lui   r24, 0x4
0x016c:  add   r23, r23, r24
0x0170:  sw    r5, 192(r23)
0x0174:  halt
