;; sentinel — golden disassembly (regenerate with ZOLC_BLESS=1)

== Baseline ==
0x0000:  sll   r23, r2, 2
0x0004:  lui   r24, 0x4
0x0008:  add   r23, r23, r24
0x000c:  lw    r22, 0(r23)
0x0010:  blez  r22, 7
0x0014:  sll   r24, r2, 2
0x0018:  lui   r25, 0x4
0x001c:  add   r24, r24, r25
0x0020:  lw    r23, 0(r24)
0x0024:  add   r3, r3, r23
0x0028:  addi  r2, r2, 1
0x002c:  j     0x0
0x0030:  halt

== HwLoop ==
0x0000:  sll   r23, r2, 2
0x0004:  lui   r24, 0x4
0x0008:  add   r23, r23, r24
0x000c:  lw    r22, 0(r23)
0x0010:  blez  r22, 7
0x0014:  sll   r24, r2, 2
0x0018:  lui   r25, 0x4
0x001c:  add   r24, r24, r25
0x0020:  lw    r23, 0(r24)
0x0024:  add   r3, r3, r23
0x0028:  addi  r2, r2, 1
0x002c:  j     0x0
0x0030:  halt

== Zolc-lite ==
0x0000:  sll   r23, r2, 2
0x0004:  lui   r24, 0x4
0x0008:  add   r23, r23, r24
0x000c:  lw    r22, 0(r23)
0x0010:  blez  r22, 7
0x0014:  sll   r24, r2, 2
0x0018:  lui   r25, 0x4
0x001c:  add   r24, r24, r25
0x0020:  lw    r23, 0(r24)
0x0024:  add   r3, r3, r23
0x0028:  addi  r2, r2, 1
0x002c:  j     0x0
0x0030:  halt
