//! End-to-end differential gate over the bundled corpus.
//!
//! Every corpus program is compiled, lowered for all three hand targets
//! plus the auto-retarget path, and executed on all four executor tiers;
//! each run is judged bit-exactly against the AST interpreter's
//! reference state, and the tiers must also agree on the retire count.
//! Where `zolc-oracle` claims the baseline binary analyzable, its
//! closed-form summary is held to the executed outcome as a fifth arm —
//! and coverage itself is pinned per program in the corpus table, so the
//! analyzable fragment cannot silently shrink.

use std::sync::Arc;
use zolc_core::{Zolc, ZolcConfig};
use zolc_ir::Target;
use zolc_isa::DATA_BASE;
use zolc_lang::{compile, corpus, CompiledUnit};
use zolc_sim::{run_session, CompiledProgram, Executor, ExecutorKind, Finished, NullEngine};

const FUEL: u64 = 50_000_000;

const ALL_EXECUTORS: [ExecutorKind; 4] = [
    ExecutorKind::CycleAccurate,
    ExecutorKind::Functional,
    ExecutorKind::Compiled,
    ExecutorKind::Nest,
];

fn compile_entry(name: &str, source: &str) -> CompiledUnit {
    compile(name, source).unwrap_or_else(|e| panic!("{name}: {e}"))
}

#[test]
fn corpus_compiles_with_the_recorded_loop_shape() {
    for e in corpus() {
        let unit = compile_entry(e.name, e.source);
        assert_eq!(
            unit.counted_loops(),
            e.counted_loops,
            "{}: counted-loop count drifted from the corpus table",
            e.name
        );
        assert_eq!(
            unit.while_loops(),
            e.while_loops,
            "{}: while-loop count drifted from the corpus table",
            e.name
        );
    }
}

#[test]
fn corpus_is_bit_exact_on_every_target_and_executor() {
    for e in corpus() {
        let unit = compile_entry(e.name, e.source);
        for target in [
            Target::Baseline,
            Target::HwLoop,
            Target::Zolc(ZolcConfig::lite()),
        ] {
            let built = unit
                .build(&target)
                .unwrap_or_else(|err| panic!("{}/{target}: {err}", e.name));
            let mut retired = None;
            for kind in ALL_EXECUTORS {
                let run = built
                    .run(FUEL, kind)
                    .unwrap_or_else(|err| panic!("{}/{target}/{kind}: {err}", e.name));
                assert!(
                    run.is_correct(),
                    "{}/{target}/{kind}: {:?} {:?}",
                    e.name,
                    run.mismatches,
                    run.violations
                );
                if let Some(prev) = retired {
                    assert_eq!(
                        prev, run.stats.retired,
                        "{}/{target}/{kind}: retire count differs between executors",
                        e.name
                    );
                }
                retired = Some(run.stats.retired);
            }
        }
    }
}

#[test]
fn corpus_auto_retargets_with_the_recorded_handled_count() {
    for e in corpus() {
        let unit = compile_entry(e.name, e.source);
        let auto = unit
            .build_auto(ZolcConfig::lite())
            .unwrap_or_else(|err| panic!("{}: {err}", e.name));
        assert_eq!(
            auto.stats.hw_loops, e.handled_loops,
            "{}: hardware-mapped loop count drifted from the corpus table \
             (unhandled: {}, excised: {})",
            e.name, auto.stats.unhandled, auto.stats.excised
        );
        let mut retired = None;
        for kind in ALL_EXECUTORS {
            let run = auto
                .built
                .run(FUEL, kind)
                .unwrap_or_else(|err| panic!("{}/auto/{kind}: {err}", e.name));
            assert!(
                run.is_correct(),
                "{}/auto/{kind}: {:?} {:?}",
                e.name,
                run.mismatches,
                run.violations
            );
            if let Some(prev) = retired {
                assert_eq!(
                    prev, run.stats.retired,
                    "{}/auto/{kind}: retire count differs between executors",
                    e.name
                );
            }
            retired = Some(run.stats.retired);
        }
    }
}

/// Runs the baseline binary raw (no expectation check) so the oracle's
/// summary can be compared to the *whole* architectural outcome, not
/// just the expectation's slice of it.
fn run_baseline_raw(program: &Arc<CompiledProgram>) -> Finished<Box<dyn Executor>> {
    run_session(ExecutorKind::Functional, program, &mut NullEngine, FUEL).expect("baseline runs")
}

#[test]
fn corpus_oracle_coverage_is_pinned_and_summaries_bit_match() {
    for e in corpus() {
        let unit = compile_entry(e.name, e.source);
        let built = unit.build(&Target::Baseline).expect("baseline builds");
        let fin = run_baseline_raw(&built.program);
        let mem_size = fin.cpu.mem().size();
        match zolc_oracle::summarize(built.program.source(), mem_size) {
            Err(refusal) => {
                assert!(
                    !e.oracle_covered,
                    "{}: recorded as oracle-covered but refused: {refusal}",
                    e.name
                );
            }
            Ok(summary) => {
                assert!(
                    e.oracle_covered,
                    "{}: oracle coverage grew — update the corpus table",
                    e.name
                );
                assert_eq!(
                    summary.final_regs,
                    fin.cpu.regs().snapshot(),
                    "{}: oracle registers differ",
                    e.name
                );
                assert_eq!(
                    summary.retired, fin.stats.retired,
                    "{}: oracle retire count differs",
                    e.name
                );
                assert_eq!(
                    summary.branches, fin.stats.branches,
                    "{}: oracle branch count differs",
                    e.name
                );
                // Replaying the touched bytes over the initial image must
                // reconstruct the executor's final data window.
                let len = mem_size - DATA_BASE as usize;
                let source = built.program.source();
                let mut expect = vec![0u8; len];
                expect[..source.data().len()].copy_from_slice(source.data());
                for &(addr, byte) in &summary.touched_mem {
                    if addr >= DATA_BASE {
                        expect[(addr - DATA_BASE) as usize] = byte;
                    }
                }
                assert_eq!(
                    expect,
                    fin.cpu.mem().read_bytes(DATA_BASE, len).unwrap(),
                    "{}: oracle data memory differs",
                    e.name
                );
            }
        }
    }
}

/// Attaching an active controller: the lite-config Zolc engine must
/// report zero consistency violations over the whole corpus (covered
/// implicitly by `is_correct` above, asserted explicitly here for the
/// auto path on the cycle-accurate tier, where the engine drives real
/// back-to-back branching).
#[test]
fn corpus_auto_runs_keep_the_controller_consistent() {
    for e in corpus() {
        let unit = compile_entry(e.name, e.source);
        let auto = unit.build_auto(ZolcConfig::lite()).expect("retargets");
        let mut z = Zolc::new(ZolcConfig::lite());
        run_session(
            ExecutorKind::CycleAccurate,
            &auto.built.program,
            &mut z,
            FUEL,
        )
        .unwrap_or_else(|err| panic!("{}: {err}", e.name));
        z.assert_consistent();
    }
}
