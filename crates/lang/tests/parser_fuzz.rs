//! Front-end robustness: the compiler must never panic, whatever the
//! input — malformed programs come back as structured [`Diagnostic`]s
//! with a line/column inside the input.
//!
//! Three input distributions: raw byte soup (exercises the lexer's
//! byte handling and UTF-8 tolerance), token soup (syntactically
//! plausible streams that stress the parser's error paths), and
//! single-byte mutations of real corpus programs (inputs that are
//! *almost* valid, the hardest diagnostics to position well). A golden
//! table then pins exact messages and positions for representative
//! mistakes, so diagnostics cannot silently regress into vaguer ones.

use proptest::prelude::*;
use zolc_lang::{compile, corpus};

/// Every diagnostic must carry a position inside (or one past) the
/// input, and a nonempty message.
fn well_formed(src: &str, err: &zolc_lang::Diagnostic) {
    assert!(err.pos.line >= 1, "line is 1-based: {err}");
    assert!(err.pos.col >= 1, "col is 1-based: {err}");
    let lines = src.lines().count().max(1) as u32;
    assert!(
        err.pos.line <= lines + 1,
        "line {} beyond input ({} lines): {err}",
        err.pos.line,
        lines
    );
    assert!(!err.message.is_empty(), "empty diagnostic message");
}

fn never_panics(name: &str, src: &str) {
    if let Err(err) = compile(name, src) {
        well_formed(src, &err);
    }
}

const TOKENS: &[&str] = &[
    "int",
    "for",
    "while",
    "if",
    "else",
    "break",
    "x",
    "y",
    "a",
    "i",
    "0",
    "1",
    "42",
    "2147483647",
    "0x7f",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    "=",
    "+=",
    "-=",
    "==",
    "!=",
    "<",
    "<=",
    ">",
    ">=",
    "+",
    "-",
    "*",
    "&",
    "|",
    "^",
    "<<",
    ">>",
    "&&",
    "||",
    "!",
    "~",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Raw bytes (lossily decoded): the lexer sees every byte value,
    /// including non-ASCII and control characters.
    #[test]
    fn byte_soup_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        never_panics("byte-soup", &src);
    }

    /// Streams of real tokens in random order: deep into the parser's
    /// error handling, where recovery mistakes would panic or loop.
    #[test]
    fn token_soup_never_panics(picks in prop::collection::vec(0..TOKENS.len(), 0..60)) {
        let src = picks
            .iter()
            .map(|&k| TOKENS[k])
            .collect::<Vec<_>>()
            .join(" ");
        never_panics("token-soup", &src);
    }

    /// Corpus programs with one byte overwritten: near-valid inputs.
    #[test]
    fn mutated_corpus_never_panics(
        pick in 0..25usize,
        at in any::<u32>(),
        with in any::<u8>(),
    ) {
        let entry = &corpus()[pick % corpus().len()];
        let mut bytes = entry.source.as_bytes().to_vec();
        let at = at as usize % bytes.len();
        bytes[at] = with;
        let src = String::from_utf8_lossy(&bytes).into_owned();
        never_panics(entry.name, &src);
    }
}

/// Golden diagnostics: exact message and position for representative
/// front-end mistakes, one per pipeline stage.
#[test]
fn bad_input_diagnostics_are_pinned() {
    let cases: &[(&str, &str)] = &[
        // lexer
        (
            "int x = 2147483648;",
            "line 1, col 9: decimal literal exceeds 2147483647 (write INT_MIN as 0x80000000)",
        ),
        ("x = 1 @ 2;", "line 1, col 7: unexpected character `@`"),
        ("/* open", "line 1, col 1: unterminated block comment"),
        ("x = 12abc;", "line 1, col 5: malformed number literal"),
        // parser
        ("x = ;", "line 1, col 5: expected an expression, found `;`"),
        (
            "if (x) y = 1;",
            "line 1, col 8: expected `{` to open the `if` body, found identifier `y`",
        ),
        (
            "for (a[0] = 1; i < 4; i += 1) { }",
            "line 1, col 6: `for` init clause must assign a scalar",
        ),
        (
            "while (1) { int x; }",
            "line 1, col 13: declarations are only allowed at top level",
        ),
        // check
        ("x = 1;", "line 1, col 1: `x` is not declared"),
        (
            "int a[2]; a = 1;",
            "line 1, col 11: cannot assign whole array `a`",
        ),
        ("int x; break;", "line 1, col 8: `break` outside of a loop"),
        // interp (compile-time reference execution)
        (
            "int a[2]; a[5] = 1;",
            "line 1, col 11: `a[5]` is out of bounds (length 2)",
        ),
    ];
    for (src, want) in cases {
        let err = compile("golden", src).expect_err(src);
        assert_eq!(&err.to_string(), want, "source: {src}");
    }
}
