//! Golden disassembly snapshots: the exact code the front end emits for
//! every corpus program on each hand target, pinned under
//! `tests/snapshots/`. Any codegen or lowering change shows up as a
//! reviewable diff; regenerate intentionally with
//!
//! ```text
//! ZOLC_BLESS=1 cargo test -p zolc-lang --test snapshots
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;
use zolc_core::ZolcConfig;
use zolc_ir::Target;
use zolc_lang::{compile, corpus};

fn snapshot_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/snapshots")
}

fn render(name: &str, source: &str) -> String {
    let unit = compile(name, source).unwrap_or_else(|e| panic!("{name}: {e}"));
    let mut out = String::new();
    writeln!(
        out,
        ";; {name} — golden disassembly (regenerate with ZOLC_BLESS=1)"
    )
    .unwrap();
    for (label, target) in [
        ("Baseline", Target::Baseline),
        ("HwLoop", Target::HwLoop),
        ("Zolc-lite", Target::Zolc(ZolcConfig::lite())),
    ] {
        let built = unit
            .build(&target)
            .unwrap_or_else(|e| panic!("{name}/{label}: {e}"));
        writeln!(out, "\n== {label} ==").unwrap();
        out.push_str(&built.program.source().listing());
    }
    out
}

#[test]
fn corpus_disassembly_matches_snapshots() {
    let bless = std::env::var_os("ZOLC_BLESS").is_some();
    let dir = snapshot_dir();
    let mut stale = Vec::new();
    for e in corpus() {
        let got = render(e.name, e.source);
        let path = dir.join(format!("{}.asm", e.name));
        if bless {
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(want) if want == got => {}
            Ok(want) => {
                let first = got
                    .lines()
                    .zip(want.lines())
                    .position(|(g, w)| g != w)
                    .unwrap_or_else(|| got.lines().count().min(want.lines().count()));
                stale.push(format!(
                    "{}: differs from snapshot starting at line {}",
                    e.name,
                    first + 1
                ));
            }
            Err(_) => stale.push(format!("{}: snapshot missing", e.name)),
        }
    }
    assert!(
        stale.is_empty(),
        "stale snapshots (run `ZOLC_BLESS=1 cargo test -p zolc-lang --test snapshots` \
         and review the diff):\n  {}",
        stale.join("\n  ")
    );
}

/// No orphaned snapshot files: every `.asm` under `tests/snapshots/`
/// must correspond to a current corpus program.
#[test]
fn snapshots_have_no_orphans() {
    for entry in std::fs::read_dir(snapshot_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|x| x != "asm") {
            continue;
        }
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        assert!(
            zolc_lang::find_corpus(&stem).is_some(),
            "orphaned snapshot {stem}.asm (program no longer in the corpus)"
        );
    }
}
