//! Prints the measured corpus table — loop shape, retarget handledness,
//! oracle coverage (with refusal reasons) — for blessing new values
//! into `src/corpus.rs` when programs are added or the stack changes.
//!
//! ```text
//! cargo run -p zolc-lang --example measure_corpus
//! ```

fn main() {
    println!(
        "{:<12} {:>7} {:>6} {:>7} {:>9}  oracle",
        "name", "counted", "while", "handled", "unhandled"
    );
    for e in zolc_lang::corpus() {
        let unit = zolc_lang::compile(e.name, e.source).expect("corpus compiles");
        let auto = unit
            .build_auto(zolc_core::ZolcConfig::lite())
            .expect("corpus retargets");
        let built = unit
            .build(&zolc_ir::Target::Baseline)
            .expect("corpus lowers");
        let oracle = match zolc_oracle::summarize(built.program.source(), 0x8_0000) {
            Ok(_) => "ok".to_string(),
            Err(refusal) => format!("{refusal}"),
        };
        println!(
            "{:<12} {:>7} {:>6} {:>7} {:>9}  {}",
            e.name,
            unit.counted_loops(),
            unit.while_loops(),
            auto.stats.hw_loops,
            auto.stats.unhandled,
            oracle
        );
    }
}
