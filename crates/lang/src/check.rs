//! Scope/type resolution and resource-limit checking.
//!
//! The language has exactly two types — `int` scalars and `int[N]`
//! arrays — so "type checking" is deciding, for every name use, that
//! the name is declared (lexically before the use), that scalars are
//! never indexed and arrays never used bare, and that the program fits
//! the register file and data segment the code generator targets.

use crate::ast::{Diagnostic, Expr, ExprKind, Pos, Stmt, StmtKind};
use std::collections::HashMap;
use zolc_isa::{reg, Reg, DATA_BASE};

/// First register of the scalar pool (`r2`).
pub(crate) const SCALAR_BASE: u8 = 2;
/// Scalars live in `r2..=r13`.
pub(crate) const MAX_SCALARS: usize = 12;
/// Longest single array, in words.
const MAX_ARRAY_WORDS: u32 = 4096;
/// Data-segment budget across all arrays, in words.
const MAX_TOTAL_WORDS: u32 = 12288;

/// A resolved scalar variable.
#[derive(Debug, Clone)]
pub(crate) struct ScalarSym {
    /// Source name.
    pub name: String,
    /// Home register (`r2..=r13`, in declaration order).
    pub reg: Reg,
}

/// A resolved array.
#[derive(Debug, Clone)]
pub(crate) struct ArraySym {
    /// Source name.
    pub name: String,
    /// Element count.
    pub len: u32,
    /// Data-segment address of element 0.
    pub addr: u32,
    /// Initializer, padded to `len` words.
    pub init: Vec<i32>,
}

/// Output of the checker: symbol tables the interpreter and code
/// generator share.
#[derive(Debug, Clone, Default)]
pub(crate) struct Symbols {
    /// Scalars in declaration order.
    pub scalars: Vec<ScalarSym>,
    /// Arrays in declaration order (addresses are packed from
    /// [`DATA_BASE`]).
    pub arrays: Vec<ArraySym>,
}

impl Symbols {
    pub(crate) fn scalar(&self, name: &str) -> Option<&ScalarSym> {
        self.scalars.iter().find(|s| s.name == name)
    }

    pub(crate) fn array(&self, name: &str) -> Option<&ArraySym> {
        self.arrays.iter().find(|a| a.name == name)
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Binding {
    Scalar,
    Array,
}

struct Checker {
    symbols: Symbols,
    /// Names visible so far (declaration order matters: a use before
    /// its declaration is an error even though all storage is static).
    visible: HashMap<String, Binding>,
}

impl Checker {
    fn expr(&self, e: &Expr) -> Result<(), Diagnostic> {
        match &e.kind {
            ExprKind::Num(_) => Ok(()),
            ExprKind::Var(name) => match self.visible.get(name) {
                Some(Binding::Scalar) => Ok(()),
                Some(Binding::Array) => Err(Diagnostic::new(
                    e.pos,
                    format!("array `{name}` must be indexed"),
                )),
                None => Err(undeclared(e.pos, name)),
            },
            ExprKind::Index(name, index) => {
                match self.visible.get(name) {
                    Some(Binding::Array) => {}
                    Some(Binding::Scalar) => {
                        return Err(Diagnostic::new(
                            e.pos,
                            format!("scalar `{name}` cannot be indexed"),
                        ))
                    }
                    None => return Err(undeclared(e.pos, name)),
                }
                self.expr(index)
            }
            ExprKind::Unary(_, operand) => self.expr(operand),
            ExprKind::Binary(_, lhs, rhs) => {
                self.expr(lhs)?;
                self.expr(rhs)
            }
        }
    }

    fn stmts(&mut self, stmts: &[Stmt], in_loop: bool) -> Result<(), Diagnostic> {
        for s in stmts {
            self.stmt(s, in_loop)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt, in_loop: bool) -> Result<(), Diagnostic> {
        match &s.kind {
            StmtKind::DeclScalar { .. } | StmtKind::DeclArray { .. } => {
                // The parser only produces declarations at top level;
                // `check` handles them there.
                unreachable!("declaration below top level")
            }
            StmtKind::Assign { name, index, value } => {
                match (self.visible.get(name), index) {
                    (Some(Binding::Scalar), None) => {}
                    (Some(Binding::Array), Some(_)) => {}
                    (Some(Binding::Scalar), Some(_)) => {
                        return Err(Diagnostic::new(
                            s.pos,
                            format!("scalar `{name}` cannot be indexed"),
                        ))
                    }
                    (Some(Binding::Array), None) => {
                        return Err(Diagnostic::new(
                            s.pos,
                            format!("cannot assign whole array `{name}`"),
                        ))
                    }
                    (None, _) => return Err(undeclared(s.pos, name)),
                }
                if let Some(ix) = index {
                    self.expr(ix)?;
                }
                self.expr(value)
            }
            StmtKind::If { cond, then, els } => {
                self.expr(cond)?;
                self.stmts(then, in_loop)?;
                self.stmts(els, in_loop)
            }
            StmtKind::While { cond, body } => {
                self.expr(cond)?;
                self.stmts(body, true)
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.stmt(init, in_loop)?;
                self.expr(cond)?;
                self.stmts(body, true)?;
                self.stmt(step, in_loop)
            }
            StmtKind::Break => {
                if in_loop {
                    Ok(())
                } else {
                    Err(Diagnostic::new(s.pos, "`break` outside of a loop"))
                }
            }
        }
    }

    fn declare(&mut self, s: &Stmt) -> Result<(), Diagnostic> {
        match &s.kind {
            StmtKind::DeclScalar { name, .. } => {
                self.duplicate_check(s.pos, name)?;
                if self.symbols.scalars.len() == MAX_SCALARS {
                    return Err(Diagnostic::new(
                        s.pos,
                        format!("too many scalar variables (limit {MAX_SCALARS})"),
                    ));
                }
                let home = reg(SCALAR_BASE + self.symbols.scalars.len() as u8);
                self.symbols.scalars.push(ScalarSym {
                    name: name.clone(),
                    reg: home,
                });
                self.visible.insert(name.clone(), Binding::Scalar);
                Ok(())
            }
            StmtKind::DeclArray { name, len, init } => {
                self.duplicate_check(s.pos, name)?;
                if *len > MAX_ARRAY_WORDS {
                    return Err(Diagnostic::new(
                        s.pos,
                        format!("array `{name}` longer than {MAX_ARRAY_WORDS} words"),
                    ));
                }
                let used: u32 = self.symbols.arrays.iter().map(|a| a.len).sum();
                if used + len > MAX_TOTAL_WORDS {
                    return Err(Diagnostic::new(
                        s.pos,
                        format!("data segment exceeds {MAX_TOTAL_WORDS} words"),
                    ));
                }
                let mut padded = init.clone();
                padded.resize(*len as usize, 0);
                self.symbols.arrays.push(ArraySym {
                    name: name.clone(),
                    len: *len,
                    addr: DATA_BASE + 4 * used,
                    init: padded,
                });
                self.visible.insert(name.clone(), Binding::Array);
                Ok(())
            }
            _ => unreachable!("declare called on a non-declaration"),
        }
    }

    fn duplicate_check(&self, pos: Pos, name: &str) -> Result<(), Diagnostic> {
        if self.visible.contains_key(name) {
            Err(Diagnostic::new(
                pos,
                format!("`{name}` is already declared"),
            ))
        } else {
            Ok(())
        }
    }
}

fn undeclared(pos: Pos, name: &str) -> Diagnostic {
    Diagnostic::new(pos, format!("`{name}` is not declared"))
}

/// Resolves and checks a parsed program. On success returns the symbol
/// tables; the program is guaranteed to fit the scalar register pool
/// and the data-segment budget, reference every name correctly, and
/// only `break` inside loops.
pub(crate) fn check(program: &[Stmt]) -> Result<Symbols, Diagnostic> {
    let mut checker = Checker {
        symbols: Symbols::default(),
        visible: HashMap::new(),
    };
    for s in program {
        match &s.kind {
            StmtKind::DeclScalar { init, .. } => {
                // The initializer may reference earlier names only.
                if let Some(e) = init {
                    checker.declare(s)?;
                    // Declared first: `int x = x + 1;` reads the
                    // implicit zero, which matches the interpreter.
                    checker.expr(e)?;
                } else {
                    checker.declare(s)?;
                }
            }
            StmtKind::DeclArray { .. } => checker.declare(s)?,
            _ => checker.stmt(s, false)?,
        }
    }
    Ok(checker.symbols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<Symbols, Diagnostic> {
        check(&parse(src).unwrap())
    }

    #[test]
    fn resolves_scalars_and_arrays() {
        let syms = check_src("int a[3] = {1}; int x = 5; x = a[x];").unwrap();
        assert_eq!(syms.scalar("x").unwrap().reg, reg(2));
        let a = syms.array("a").unwrap();
        assert_eq!(a.addr, DATA_BASE);
        assert_eq!(a.init, vec![1, 0, 0]);
    }

    #[test]
    fn arrays_pack_the_data_segment() {
        let syms = check_src("int a[3]; int b[5];").unwrap();
        assert_eq!(syms.array("b").unwrap().addr, DATA_BASE + 12);
    }

    #[test]
    fn rejects_misuse() {
        for (src, needle) in [
            ("x = 1;", "not declared"),
            ("int x; int x;", "already declared"),
            ("int a[2]; a = 1;", "whole array"),
            ("int a[2]; int x; x = a;", "must be indexed"),
            ("int x; x[0] = 1;", "cannot be indexed"),
            ("break;", "outside of a loop"),
            ("int a[9999];", "longer than"),
            (
                "int a[4096]; int b[4096]; int c[4096]; int d[1];",
                "exceeds",
            ),
        ] {
            let err = check_src(src).unwrap_err();
            assert!(err.message.contains(needle), "{src}: {err}");
        }
    }

    #[test]
    fn scalar_pool_is_bounded() {
        let mut src = String::new();
        for i in 0..13 {
            src.push_str(&format!("int v{i};\n"));
        }
        let err = check_src(&src).unwrap_err();
        assert!(err.message.contains("too many scalar"), "{err}");
        assert_eq!(err.pos.line, 13);
    }
}
