//! The bundled program corpus.
//!
//! Each entry records what the front end is expected to produce
//! (counted vs. explicit-branch loops) and what the rest of the stack
//! does with the result (how many loops auto-retarget maps onto ZOLC
//! hardware, whether the closed-form oracle can summarize the baseline
//! binary). The numbers are pinned: `tests/corpus_exec.rs` recompiles
//! every program and fails if any drifts.

/// One program in the bundled corpus.
#[derive(Debug, Clone, Copy)]
pub struct CorpusEntry {
    /// Program name — the file stem under `corpus/`.
    pub name: &'static str,
    /// One-line description of the loop structure it exercises.
    pub description: &'static str,
    /// Full source text.
    pub source: &'static str,
    /// `for` loops the front end emits as counted [`zolc_ir::LoopNode`]s.
    pub counted_loops: usize,
    /// Loops left in explicit-branch form (`while`s and demoted `for`s).
    pub while_loops: usize,
    /// Loops `retarget` maps onto ZOLC hardware in the auto build.
    pub handled_loops: usize,
    /// Whether `zolc-oracle` summarizes the baseline binary in closed
    /// form. The oracle's fragment is counted loops whose bodies are
    /// affine scalar updates with iteration-invariant memory addresses,
    /// so array-walking kernels (variant addresses) and data-dependent
    /// control are refused by design.
    pub oracle_covered: bool,
}

macro_rules! entry {
    ($name:literal, $desc:literal, counted: $c:literal, whiles: $w:literal,
     handled: $h:literal, oracle: $o:literal) => {
        CorpusEntry {
            name: $name,
            description: $desc,
            source: include_str!(concat!("../corpus/", $name, ".zl")),
            counted_loops: $c,
            while_loops: $w,
            handled_loops: $h,
            oracle_covered: $o,
        }
    };
}

static CORPUS: &[CorpusEntry] = &[
    entry!("dot", "dot product, single hardware-index loop",
           counted: 1, whiles: 0, handled: 1, oracle: false),
    entry!("matmul", "8x8 matrix multiply, perfect 3-deep nest",
           counted: 4, whiles: 0, handled: 4, oracle: false),
    entry!("fir", "8-tap FIR filter, nested MAC loops",
           counted: 3, whiles: 0, handled: 3, oracle: false),
    entry!("iir", "first-order IIR, loop-carried scalar state",
           counted: 2, whiles: 0, handled: 2, oracle: false),
    entry!("me_sad", "motion-estimation SAD, 4-deep nest with abs and best tracking",
           counted: 6, whiles: 0, handled: 6, oracle: false),
    entry!("prefix_sum", "in-place prefix sum, memory-carried dependence",
           counted: 2, whiles: 0, handled: 2, oracle: false),
    entry!("sentinel", "sentinel scan, pure data-dependent while",
           counted: 0, whiles: 1, handled: 0, oracle: false),
    entry!("triangle", "triangular nest, runtime trip count from the outer index",
           counted: 2, whiles: 0, handled: 2, oracle: false),
    entry!("bubble", "bubble sort, shrinking runtime bound plus swaps",
           counted: 2, whiles: 0, handled: 2, oracle: false),
    entry!("histogram", "histogram, data-dependent store address",
           counted: 2, whiles: 0, handled: 2, oracle: false),
    entry!("reverse", "in-place reversal, paired end loads/stores",
           counted: 2, whiles: 0, handled: 2, oracle: false),
    entry!("crc", "CRC-16, bit loop branching on the shifted-out bit",
           counted: 2, whiles: 0, handled: 2, oracle: false),
    entry!("gcd", "subtraction GCD, while nested inside a counted for",
           counted: 1, whiles: 1, handled: 1, oracle: false),
    entry!("search", "linear search with guarded break",
           counted: 1, whiles: 0, handled: 0, oracle: false),
    entry!("transpose", "6x6 transpose, perfect 2-deep nest",
           counted: 3, whiles: 0, handled: 3, oracle: false),
    entry!("movavg", "4-tap moving average, nonzero loop start",
           counted: 3, whiles: 0, handled: 3, oracle: false),
    entry!("popcount", "per-word popcount, shift-until-zero while in a for",
           counted: 1, whiles: 1, handled: 1, oracle: false),
    entry!("collatz", "Collatz trajectory, fully data-dependent while",
           counted: 0, whiles: 1, handled: 0, oracle: false),
    entry!("horner", "Horner polynomial evaluation, single MAC loop",
           counted: 1, whiles: 0, handled: 1, oracle: false),
    entry!("checksum", "Fletcher checksum, two masked running sums",
           counted: 2, whiles: 0, handled: 2, oracle: false),
    entry!("maxmin", "max/min reduction with guarded updates",
           counted: 2, whiles: 0, handled: 2, oracle: false),
    entry!("imperfect", "imperfect nest, work before and after the inner loop",
           counted: 2, whiles: 0, handled: 2, oracle: false),
    entry!("mixed", "counted for inside a data-dependent while",
           counted: 2, whiles: 1, handled: 1, oracle: false),
    entry!("accum", "nested affine accumulation, fixed-address total store",
           counted: 2, whiles: 0, handled: 2, oracle: true),
    entry!("decay", "descending stride-2 counted loop",
           counted: 1, whiles: 0, handled: 1, oracle: true),
];

/// All bundled corpus programs, in a fixed order.
pub fn corpus() -> &'static [CorpusEntry] {
    CORPUS
}

/// Looks up a corpus program by name.
pub fn find_corpus(name: &str) -> Option<&'static CorpusEntry> {
    CORPUS.iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_names_are_unique_and_sources_nonempty() {
        let mut seen = std::collections::HashSet::new();
        for e in corpus() {
            assert!(seen.insert(e.name), "duplicate corpus name {}", e.name);
            assert!(!e.source.trim().is_empty(), "{} is empty", e.name);
            assert!(!e.description.is_empty(), "{} lacks a description", e.name);
        }
        assert!(corpus().len() >= 20, "corpus shrank below 20 programs");
    }

    #[test]
    fn find_corpus_round_trips() {
        for e in corpus() {
            assert_eq!(find_corpus(e.name).unwrap().name, e.name);
        }
        assert!(find_corpus("no-such-program").is_none());
    }
}
