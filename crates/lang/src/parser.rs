//! Recursive-descent parser with C expression precedence.
//!
//! Grammar sketch (see `LANGUAGE.md` for the full reference):
//!
//! ```text
//! program   := item*
//! item      := decl | stmt
//! decl      := "int" IDENT ("=" expr)? ";"
//!            | "int" IDENT "[" NUM "]" ("=" "{" num ("," num)* ","? "}")? ";"
//! stmt      := assign ";" | if | while | for | "break" ";"
//! assign    := IDENT ("[" expr "]")? ("=" | "+=" | "-=") expr
//! if        := "if" "(" expr ")" block ("else" (block | if))?
//! while     := "while" "(" expr ")" block
//! for       := "for" "(" assign ";" expr ";" assign ")" block
//! block     := "{" stmt* "}"
//! ```
//!
//! Declarations are top-level only; blocks are mandatory on every
//! control statement; `else if` chains are sugar for nested `if`s.
//! Nesting depth (statements and expressions combined) is bounded so
//! adversarial input cannot overflow the stack.

use crate::ast::{BinOp, Diagnostic, Expr, ExprKind, Pos, Stmt, StmtKind, UnOp};
use crate::lexer::{lex, Tok, Token};

/// Maximum combined statement/expression nesting depth.
const MAX_DEPTH: usize = 64;

struct Parser {
    toks: Vec<Token>,
    i: usize,
    end: Pos,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i).map(|t| &t.tok)
    }

    fn pos(&self) -> Pos {
        self.toks.get(self.i).map(|t| t.pos).unwrap_or(self.end)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn eat(&mut self, want: &Tok) -> bool {
        if self.peek() == Some(want) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, want: &Tok, context: &str) -> Result<Pos, Diagnostic> {
        let pos = self.pos();
        match self.peek() {
            Some(t) if t == want => {
                self.i += 1;
                Ok(pos)
            }
            Some(t) => Err(Diagnostic::new(
                pos,
                format!("expected {want} {context}, found {t}"),
            )),
            None => Err(Diagnostic::new(
                pos,
                format!("expected {want} {context}, found end of input"),
            )),
        }
    }

    fn ident(&mut self, context: &str) -> Result<(String, Pos), Diagnostic> {
        let pos = self.pos();
        match self.peek().cloned() {
            Some(Tok::Ident(name)) => {
                self.i += 1;
                Ok((name, pos))
            }
            Some(t) => Err(Diagnostic::new(
                pos,
                format!("expected identifier {context}, found {t}"),
            )),
            None => Err(Diagnostic::new(
                pos,
                format!("expected identifier {context}, found end of input"),
            )),
        }
    }

    fn descend(&mut self, pos: Pos) -> Result<DepthGuard<'_>, Diagnostic> {
        if self.depth >= MAX_DEPTH {
            return Err(Diagnostic::new(
                pos,
                format!("nesting deeper than {MAX_DEPTH} levels"),
            ));
        }
        self.depth += 1;
        Ok(DepthGuard { parser: self })
    }

    // ---- expressions -------------------------------------------------

    fn expr(&mut self) -> Result<Expr, Diagnostic> {
        self.binary(0)
    }

    /// Precedence-climbing over the C binary operator table
    /// (`min_level` indexes [`levels`]).
    fn binary(&mut self, min_level: usize) -> Result<Expr, Diagnostic> {
        const LEVELS: &[&[(Tok, BinOp)]] = &[
            &[(Tok::OrOr, BinOp::LogOr)],
            &[(Tok::AndAnd, BinOp::LogAnd)],
            &[(Tok::Pipe, BinOp::Or)],
            &[(Tok::Caret, BinOp::Xor)],
            &[(Tok::Amp, BinOp::And)],
            &[(Tok::EqEq, BinOp::Eq), (Tok::Ne, BinOp::Ne)],
            &[
                (Tok::Lt, BinOp::Lt),
                (Tok::Le, BinOp::Le),
                (Tok::Gt, BinOp::Gt),
                (Tok::Ge, BinOp::Ge),
            ],
            &[(Tok::Shl, BinOp::Shl), (Tok::Shr, BinOp::Shr)],
            &[(Tok::Plus, BinOp::Add), (Tok::Minus, BinOp::Sub)],
            &[(Tok::Star, BinOp::Mul)],
        ];
        if min_level == LEVELS.len() {
            return self.unary();
        }
        let mut lhs = self.binary(min_level + 1)?;
        while let Some(tok) = self.peek() {
            let Some(&(_, op)) = LEVELS[min_level].iter().find(|(t, _)| t == tok) else {
                break;
            };
            let pos = self.pos();
            self.i += 1;
            let rhs = self.binary(min_level + 1)?;
            lhs = Expr {
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                pos,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, Diagnostic> {
        let pos = self.pos();
        let op = match self.peek() {
            Some(Tok::Minus) => Some(UnOp::Neg),
            Some(Tok::Bang) => Some(UnOp::Not),
            Some(Tok::Tilde) => Some(UnOp::BitNot),
            _ => None,
        };
        let Some(op) = op else {
            return self.primary();
        };
        self.i += 1;
        let guard = self.descend(pos)?;
        let operand = guard.parser.unary()?;
        drop(guard);
        // Fold a literal operand so `-5` is a constant the counted-loop
        // recognizer can see.
        if let (UnOp::Neg, ExprKind::Num(n)) = (op, &operand.kind) {
            return Ok(Expr {
                kind: ExprKind::Num(n.wrapping_neg()),
                pos,
            });
        }
        Ok(Expr {
            kind: ExprKind::Unary(op, Box::new(operand)),
            pos,
        })
    }

    fn primary(&mut self) -> Result<Expr, Diagnostic> {
        let pos = self.pos();
        match self.bump().map(|t| t.tok) {
            Some(Tok::Num(n)) => Ok(Expr {
                kind: ExprKind::Num(n),
                pos,
            }),
            Some(Tok::Ident(name)) => {
                if self.eat(&Tok::LBracket) {
                    let guard = self.descend(pos)?;
                    let index = guard.parser.expr()?;
                    drop(guard);
                    self.expect(&Tok::RBracket, "to close the index")?;
                    Ok(Expr {
                        kind: ExprKind::Index(name, Box::new(index)),
                        pos,
                    })
                } else {
                    Ok(Expr {
                        kind: ExprKind::Var(name),
                        pos,
                    })
                }
            }
            Some(Tok::LParen) => {
                let guard = self.descend(pos)?;
                let inner = guard.parser.expr()?;
                drop(guard);
                self.expect(&Tok::RParen, "to close the expression")?;
                Ok(inner)
            }
            Some(t) => Err(Diagnostic::new(
                pos,
                format!("expected an expression, found {t}"),
            )),
            None => Err(Diagnostic::new(
                pos,
                "expected an expression, found end of input",
            )),
        }
    }

    // ---- statements --------------------------------------------------

    /// An assignment without its trailing `;` (shared by statements and
    /// `for` clauses). `+=`/`-=` desugar to `name = name op expr`.
    fn assign(&mut self) -> Result<Stmt, Diagnostic> {
        let (name, pos) = self.ident("to start an assignment")?;
        let index = if self.eat(&Tok::LBracket) {
            let guard = self.descend(pos)?;
            let index = guard.parser.expr()?;
            drop(guard);
            self.expect(&Tok::RBracket, "to close the index")?;
            Some(index)
        } else {
            None
        };
        let opt_op = match self.peek() {
            Some(Tok::Assign) => None,
            Some(Tok::PlusAssign) => Some(BinOp::Add),
            Some(Tok::MinusAssign) => Some(BinOp::Sub),
            _ => {
                return Err(Diagnostic::new(
                    self.pos(),
                    "expected `=`, `+=` or `-=` in assignment",
                ))
            }
        };
        self.i += 1;
        let rhs = self.expr()?;
        let value = match opt_op {
            None => rhs,
            Some(op) => {
                let current = match &index {
                    None => Expr {
                        kind: ExprKind::Var(name.clone()),
                        pos,
                    },
                    Some(ix) => Expr {
                        kind: ExprKind::Index(name.clone(), Box::new(ix.clone())),
                        pos,
                    },
                };
                Expr {
                    kind: ExprKind::Binary(op, Box::new(current), Box::new(rhs)),
                    pos,
                }
            }
        };
        Ok(Stmt {
            kind: StmtKind::Assign { name, index, value },
            pos,
        })
    }

    fn block(&mut self, context: &str) -> Result<Vec<Stmt>, Diagnostic> {
        let open = self.expect(&Tok::LBrace, context)?;
        let guard = self.descend(open)?;
        let mut body = Vec::new();
        while guard.parser.peek() != Some(&Tok::RBrace) {
            if guard.parser.peek().is_none() {
                return Err(Diagnostic::new(open, "unclosed `{` block"));
            }
            body.push(guard.parser.stmt()?);
        }
        drop(guard);
        self.i += 1; // the `}`
        Ok(body)
    }

    fn stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let pos = self.pos();
        match self.peek() {
            Some(Tok::Int) => Err(Diagnostic::new(
                pos,
                "declarations are only allowed at top level",
            )),
            Some(Tok::Break) => {
                self.i += 1;
                self.expect(&Tok::Semi, "after `break`")?;
                Ok(Stmt {
                    kind: StmtKind::Break,
                    pos,
                })
            }
            Some(Tok::If) => self.if_stmt(),
            Some(Tok::While) => {
                self.i += 1;
                self.expect(&Tok::LParen, "after `while`")?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen, "to close the condition")?;
                let body = self.block("to open the `while` body")?;
                Ok(Stmt {
                    kind: StmtKind::While { cond, body },
                    pos,
                })
            }
            Some(Tok::For) => {
                self.i += 1;
                self.expect(&Tok::LParen, "after `for`")?;
                let init = self.assign()?;
                if init.kind_is_array_store() {
                    return Err(Diagnostic::new(
                        init.pos,
                        "`for` init clause must assign a scalar",
                    ));
                }
                self.expect(&Tok::Semi, "after the `for` init clause")?;
                let cond = self.expr()?;
                self.expect(&Tok::Semi, "after the `for` condition")?;
                let step = self.assign()?;
                if step.kind_is_array_store() {
                    return Err(Diagnostic::new(
                        step.pos,
                        "`for` step clause must assign a scalar",
                    ));
                }
                self.expect(&Tok::RParen, "to close the `for` header")?;
                let body = self.block("to open the `for` body")?;
                Ok(Stmt {
                    kind: StmtKind::For {
                        init: Box::new(init),
                        cond,
                        step: Box::new(step),
                        body,
                    },
                    pos,
                })
            }
            Some(Tok::Ident(_)) => {
                let s = self.assign()?;
                self.expect(&Tok::Semi, "after the assignment")?;
                Ok(s)
            }
            Some(t) => Err(Diagnostic::new(
                pos,
                format!("expected a statement, found {t}"),
            )),
            None => Err(Diagnostic::new(
                pos,
                "expected a statement, found end of input",
            )),
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let pos = self.pos();
        self.i += 1; // `if`
        self.expect(&Tok::LParen, "after `if`")?;
        let cond = self.expr()?;
        self.expect(&Tok::RParen, "to close the condition")?;
        let then = self.block("to open the `if` body")?;
        let els = if self.eat(&Tok::Else) {
            if self.peek() == Some(&Tok::If) {
                let guard = self.descend(pos)?;
                let chained = guard.parser.if_stmt()?;
                vec![chained]
            } else {
                self.block("to open the `else` body")?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt {
            kind: StmtKind::If { cond, then, els },
            pos,
        })
    }

    // ---- top level ---------------------------------------------------

    fn decl(&mut self) -> Result<Stmt, Diagnostic> {
        let pos = self.pos();
        self.i += 1; // `int`
        let (name, _) = self.ident("after `int`")?;
        if self.eat(&Tok::LBracket) {
            let len_pos = self.pos();
            let len = match self.bump().map(|t| t.tok) {
                Some(Tok::Num(n)) if n >= 1 => n as u32,
                Some(Tok::Num(_)) => {
                    return Err(Diagnostic::new(len_pos, "array length must be at least 1"))
                }
                _ => {
                    return Err(Diagnostic::new(
                        len_pos,
                        "array length must be a positive integer literal",
                    ))
                }
            };
            self.expect(&Tok::RBracket, "to close the array length")?;
            let mut init = Vec::new();
            if self.eat(&Tok::Assign) {
                self.expect(&Tok::LBrace, "to open the array initializer")?;
                loop {
                    if self.eat(&Tok::RBrace) {
                        break;
                    }
                    let vpos = self.pos();
                    let value = match self.bump().map(|t| t.tok) {
                        Some(Tok::Num(n)) => n,
                        Some(Tok::Minus) => match self.bump().map(|t| t.tok) {
                            Some(Tok::Num(n)) => n.wrapping_neg(),
                            _ => {
                                return Err(Diagnostic::new(
                                    vpos,
                                    "expected a number after `-` in array initializer",
                                ))
                            }
                        },
                        _ => {
                            return Err(Diagnostic::new(
                                vpos,
                                "array initializers must be integer literals",
                            ))
                        }
                    };
                    init.push(value);
                    if init.len() > len as usize {
                        return Err(Diagnostic::new(
                            vpos,
                            format!("initializer has more than {len} elements"),
                        ));
                    }
                    if !self.eat(&Tok::Comma) {
                        self.expect(&Tok::RBrace, "to close the array initializer")?;
                        break;
                    }
                }
            }
            self.expect(&Tok::Semi, "after the declaration")?;
            Ok(Stmt {
                kind: StmtKind::DeclArray { name, len, init },
                pos,
            })
        } else {
            let init = if self.eat(&Tok::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect(&Tok::Semi, "after the declaration")?;
            Ok(Stmt {
                kind: StmtKind::DeclScalar { name, init },
                pos,
            })
        }
    }
}

/// RAII guard pairing every [`Parser::descend`] with the matching
/// depth decrement, even on error paths.
struct DepthGuard<'a> {
    parser: &'a mut Parser,
}

impl Drop for DepthGuard<'_> {
    fn drop(&mut self) {
        self.parser.depth -= 1;
    }
}

impl Stmt {
    fn kind_is_array_store(&self) -> bool {
        matches!(&self.kind, StmtKind::Assign { index: Some(_), .. })
    }
}

/// Parses a whole program: lexes `src` and returns the top-level
/// statement list, or the first [`Diagnostic`].
pub fn parse(src: &str) -> Result<Vec<Stmt>, Diagnostic> {
    let toks = lex(src)?;
    let end = toks
        .last()
        .map(|t| Pos {
            line: t.pos.line,
            col: t.pos.col + 1,
        })
        .unwrap_or(Pos { line: 1, col: 1 });
    let mut parser = Parser {
        toks,
        i: 0,
        end,
        depth: 0,
    };
    let mut items = Vec::new();
    while parser.peek().is_some() {
        let item = if parser.peek() == Some(&Tok::Int) {
            parser.decl()?
        } else {
            parser.stmt()?
        };
        items.push(item);
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_small_program() {
        let prog = parse(
            "int a[4] = {1, 2, 3};\n\
             int s;\n\
             for (i = 0; i < 4; i += 1) { s = s + a[i]; }",
        )
        .unwrap();
        assert_eq!(prog.len(), 3);
        let StmtKind::For { init, step, .. } = &prog[2].kind else {
            panic!("expected for");
        };
        assert!(matches!(&init.kind, StmtKind::Assign { index: None, .. }));
        // `i += 1` desugars to `i = i + 1`
        let StmtKind::Assign { value, .. } = &step.kind else {
            panic!("expected assign step");
        };
        assert!(matches!(&value.kind, ExprKind::Binary(BinOp::Add, _, _)));
    }

    #[test]
    fn precedence_is_c_like() {
        let prog = parse("x = 1 + 2 * 3 == 7 && 4 | 1;").unwrap();
        let StmtKind::Assign { value, .. } = &prog[0].kind else {
            panic!()
        };
        // Top level must be `&&`.
        assert!(matches!(&value.kind, ExprKind::Binary(BinOp::LogAnd, _, _)));
    }

    #[test]
    fn else_if_chains() {
        let prog = parse("if (x) { y = 1; } else if (z) { y = 2; } else { y = 3; }").unwrap();
        let StmtKind::If { els, .. } = &prog[0].kind else {
            panic!()
        };
        assert_eq!(els.len(), 1);
        assert!(matches!(&els[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse("x = ;").unwrap_err();
        assert_eq!(err.pos, Pos { line: 1, col: 5 });
        let err = parse("if (x) y = 1;").unwrap_err();
        assert!(err.message.contains("`{`"), "{err}");
        let err = parse("for (a[0] = 1; x; x = x + 1) { }").unwrap_err();
        assert!(err.message.contains("scalar"), "{err}");
        let err = parse("while (1) { int x; }").unwrap_err();
        assert!(err.message.contains("top level"), "{err}");
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = format!("x = {}1{};", "(".repeat(500), ")".repeat(500));
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        let blocks = format!("{}{}", "while (1) {".repeat(200), "}".repeat(200));
        assert!(parse(&blocks).is_err());
    }

    #[test]
    fn negative_literals_fold() {
        let prog = parse("x = -5;").unwrap();
        let StmtKind::Assign { value, .. } = &prog[0].kind else {
            panic!()
        };
        assert!(matches!(value.kind, ExprKind::Num(-5)));
    }
}
