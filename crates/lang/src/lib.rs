//! `zolc-lang` — a small C-like loop language compiled through
//! [`zolc_ir`] to XR32/ZOLC binaries.
//!
//! The language covers exactly the territory the DATE 2005 controller
//! argues about: `i32` scalars, fixed-size `i32` arrays, `for`/`while`/
//! `if`/`break`, and expressions over the XR32 ALU operations — no
//! functions, no pointers, no I/O. Programs are therefore *closed*:
//! the front end runs every accepted program on a reference AST
//! interpreter at compile time and derives the bit-exact
//! [`Expectation`] that the executor tiers
//! and the differential nets are gated on.
//!
//! Pipeline (each stage reports failures as a [`Diagnostic`] with
//! line/column — the front end never panics on malformed input):
//!
//! ```text
//! source ── lexer ── parser ── check ──┬── interp (reference state)
//!                                      └── codegen ── zolc_ir::LoopIr
//!                                                        │ lower_into
//!                            Baseline / HwLoop / Zolc ───┴── retarget
//! ```
//!
//! Counted `for` loops whose shape the generator can prove — induction
//! variable advancing by a constant toward a loop-invariant bound —
//! become [`zolc_ir::LoopNode`]s (ZOLC-mappable); `while` loops,
//! data-dependent `for`s and loops under `if` demote to explicit
//! branch code, so `retarget`'s handledness filters make the final
//! hardware-mapping call exactly as they would on third-party
//! binaries.
//!
//! # Quickstart
//!
//! ```
//! use zolc_lang::compile;
//! use zolc_ir::Target;
//! use zolc_sim::ExecutorKind;
//!
//! let unit = compile(
//!     "dot",
//!     "int a[4] = {1, 2, 3, 4};
//!      int b[4] = {4, 3, 2, 1};
//!      int s; int i;
//!      for (i = 0; i < 4; i += 1) { s += a[i] * b[i]; }",
//! )
//! .expect("compiles");
//! assert_eq!(unit.counted_loops(), 1);
//! let built = unit.build(&Target::Baseline).expect("lowers");
//! let run = built.run(1_000_000, ExecutorKind::Functional).expect("runs");
//! assert!(run.is_correct());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod check;
mod codegen;
mod corpus;
mod interp;
mod lexer;
mod parser;

pub use ast::{Diagnostic, Pos};
pub use corpus::{corpus, find_corpus, CorpusEntry};

use std::sync::Arc;
use zolc_cfg::{retarget, Retargeted};
use zolc_core::ZolcConfig;
use zolc_ir::{lower_into, LoopIr, LoweredInfo, Target};
use zolc_isa::{Asm, Instr, Reg};
use zolc_kernels::{AutoKernel, AutoStats, BuildError, BuiltKernel, Expectation};
use zolc_sim::CompiledProgram;

/// A compiled program: IR plus everything needed to emit and judge
/// binaries for any [`Target`].
///
/// Produced by [`compile`]. The unit owns the reference expectation
/// (computed by running the program on the AST interpreter), so every
/// [`BuiltKernel`] it emits is checked bit-for-bit by
/// [`BuiltKernel::run`] — the same gate the hand-written Fig. 2
/// kernels use.
#[derive(Debug, Clone)]
pub struct CompiledUnit {
    name: String,
    ir: LoopIr,
    expect: Expectation,
    scalars: Vec<ScalarSlot>,
    arrays: Vec<ArraySlot>,
    counted_loops: usize,
    while_loops: usize,
}

/// A scalar variable's placement and reference final value.
#[derive(Debug, Clone)]
pub struct ScalarSlot {
    /// Source name.
    pub name: String,
    /// Home register (`r2..=r13`).
    pub reg: Reg,
    /// Reference final value; `None` when the scalar is owned by the
    /// ZOLC hardware index unit (its post-loop register value is not
    /// architecturally comparable across targets, and the program
    /// provably never reads it).
    pub final_value: Option<i32>,
}

/// An array's placement and reference final contents.
#[derive(Debug, Clone)]
pub struct ArraySlot {
    /// Source name.
    pub name: String,
    /// Data-segment address of element 0.
    pub addr: u32,
    /// Initial contents (what the emitted data segment holds).
    pub init: Vec<i32>,
    /// Reference final contents.
    pub final_words: Vec<i32>,
}

impl CompiledUnit {
    /// The program name given to [`compile`].
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The generated loop IR (inspect or [`Display`](std::fmt::Display)
    /// it for the `--emit ir` view).
    pub fn ir(&self) -> &LoopIr {
        &self.ir
    }

    /// The reference expectation every built binary is judged against.
    pub fn expect(&self) -> &Expectation {
        &self.expect
    }

    /// Scalar variables in declaration order.
    pub fn scalars(&self) -> &[ScalarSlot] {
        &self.scalars
    }

    /// Arrays in declaration order.
    pub fn arrays(&self) -> &[ArraySlot] {
        &self.arrays
    }

    /// `for` loops recognized as counted (lowered as hardware-mappable
    /// [`zolc_ir::LoopNode`]s).
    pub fn counted_loops(&self) -> usize {
        self.counted_loops
    }

    /// Loops lowered in explicit-branch form (`while` loops and demoted
    /// `for` loops).
    pub fn while_loops(&self) -> usize {
        self.while_loops
    }

    /// Emits the data segment (every array, packed in declaration
    /// order) into `asm`.
    fn emit_data(&self, asm: &mut Asm) {
        for a in &self.arrays {
            asm.data_symbol(&a.name);
            if a.init.iter().all(|&w| w == 0) {
                asm.zeroed_words(a.init.len());
            } else {
                asm.words(&a.init);
            }
        }
    }

    /// Lowers the unit for `target` into a runnable [`BuiltKernel`]
    /// (data segment, lowered loop structure, `halt`).
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError::Lower`]/[`BuildError::Asm`] from the IR
    /// lowering and the assembler.
    pub fn build(&self, target: &Target) -> Result<BuiltKernel, BuildError> {
        let mut asm = Asm::new();
        self.emit_data(&mut asm);
        let info = lower_into(&mut asm, &self.ir, target)?;
        asm.emit(Instr::Halt);
        let program = CompiledProgram::compile(asm.finish()?);
        Ok(BuiltKernel {
            name: self.name.clone(),
            program,
            target: target.clone(),
            expect: self.expect.clone(),
            info,
        })
    }

    /// Builds the baseline binary and auto-retargets it onto a ZOLC of
    /// configuration `config` — the end-to-end compiler evaluation
    /// path: source → baseline binary → [`zolc_cfg::retarget`] →
    /// excised program + synthesized overlay.
    ///
    /// # Errors
    ///
    /// Propagates baseline [`BuildError`]s and
    /// [`BuildError::Retarget`] if the retargeter rejects the binary.
    pub fn build_auto(&self, config: ZolcConfig) -> Result<AutoKernel, BuildError> {
        let base = self.build(&Target::Baseline)?;
        let r = retarget(base.program.source(), &config)?;
        let stats = AutoStats::from(&r);
        let Retargeted {
            program,
            image,
            init_instructions,
            notes,
            ..
        } = r;
        Ok(AutoKernel {
            built: BuiltKernel {
                name: base.name,
                program: CompiledProgram::compile(program),
                target: Target::Zolc(config),
                expect: base.expect,
                info: LoweredInfo {
                    image: Some(image),
                    init_instructions,
                    notes,
                },
            },
            stats,
        })
    }
}

/// Compiles `source` into a [`CompiledUnit`].
///
/// Runs the full front end: lex → parse → scope/type check → reference
/// interpretation (which also proves termination within a budget and
/// the absence of out-of-bounds accesses on every executed path) →
/// IR generation.
///
/// # Errors
///
/// The first problem found, as a [`Diagnostic`] with line/column.
pub fn compile(name: &str, source: &str) -> Result<CompiledUnit, Diagnostic> {
    let program = parser::parse(source)?;
    let syms = check::check(&program)?;
    let final_state = interp::run(&program, &syms)?;
    let generated = codegen::generate(&program, &syms)?;

    let scalars: Vec<ScalarSlot> = syms
        .scalars
        .iter()
        .map(|s| ScalarSlot {
            name: s.name.clone(),
            reg: s.reg,
            final_value: (!generated.index_only.contains(&s.name))
                .then(|| final_state.scalars[s.name.as_str()]),
        })
        .collect();
    let arrays: Vec<ArraySlot> = syms
        .arrays
        .iter()
        .map(|a| ArraySlot {
            name: a.name.clone(),
            addr: a.addr,
            init: a.init.clone(),
            final_words: final_state.arrays[a.name.as_str()].clone(),
        })
        .collect();
    let expect = Expectation {
        mem_words: arrays
            .iter()
            .map(|a| (a.addr, a.final_words.iter().map(|&w| w as u32).collect()))
            .collect(),
        regs: scalars
            .iter()
            .filter_map(|s| s.final_value.map(|v| (s.reg, v as u32)))
            .collect(),
    };
    Ok(CompiledUnit {
        name: name.to_owned(),
        ir: LoopIr {
            name: name.to_owned(),
            nodes: generated.nodes,
        },
        expect,
        scalars,
        arrays,
        counted_loops: generated.counted_loops,
        while_loops: generated.while_loops,
    })
}

/// [`compile`] returning a shared handle, for callers that build one
/// unit for many targets (the bench matrix's corpus source).
///
/// # Errors
///
/// Same as [`compile`].
pub fn compile_arc(name: &str, source: &str) -> Result<Arc<CompiledUnit>, Diagnostic> {
    compile(name, source).map(Arc::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zolc_sim::ExecutorKind;

    const FUEL: u64 = 50_000_000;

    fn exec_all(unit: &CompiledUnit) {
        for target in [
            Target::Baseline,
            Target::HwLoop,
            Target::Zolc(ZolcConfig::lite()),
        ] {
            let built = unit.build(&target).expect("builds");
            let run = built.run(FUEL, ExecutorKind::Functional).expect("runs");
            assert!(
                run.is_correct(),
                "{}/{target}: {:?} {:?}",
                unit.name(),
                run.mismatches,
                run.violations
            );
        }
        let auto = unit.build_auto(ZolcConfig::lite()).expect("retargets");
        let run = auto
            .built
            .run(FUEL, ExecutorKind::Functional)
            .expect("runs");
        assert!(run.is_correct(), "auto: {:?}", run.mismatches);
    }

    #[test]
    fn dot_product_compiles_and_runs_everywhere() {
        let unit = compile(
            "dot",
            "int a[4] = {1, 2, 3, 4};\n\
             int b[4] = {4, 3, 2, 1};\n\
             int s; int i;\n\
             for (i = 0; i < 4; i += 1) { s += a[i] * b[i]; }",
        )
        .unwrap();
        assert_eq!(unit.counted_loops(), 1);
        assert_eq!(unit.while_loops(), 0);
        // s = 4 + 6 + 6 + 4 = 20
        let s = unit.scalars().iter().find(|s| s.name == "s").unwrap();
        assert_eq!(s.final_value, Some(20));
        // `i` only appears in the loop header/body: hardware index.
        let i = unit.scalars().iter().find(|s| s.name == "i").unwrap();
        assert_eq!(i.final_value, None);
        exec_all(&unit);
    }

    #[test]
    fn while_and_break_demote_to_branch_code() {
        let unit = compile(
            "scan",
            "int a[6] = {3, 1, 4, 0, 5, 9};\n\
             int i; int s;\n\
             while (a[i] != 0) { s += a[i]; i += 1; }",
        )
        .unwrap();
        assert_eq!(unit.counted_loops(), 0);
        assert_eq!(unit.while_loops(), 1);
        let s = unit.scalars().iter().find(|s| s.name == "s").unwrap();
        assert_eq!(s.final_value, Some(8));
        exec_all(&unit);
    }

    #[test]
    fn runtime_bound_becomes_reg_trips() {
        let unit = compile(
            "tri",
            "int b[16]; int i; int j; int n;\n\
             for (i = 1; i <= 4; i += 1) {\n\
               for (j = 0; j < i; j += 1) { b[n] = i; n += 1; }\n\
             }",
        )
        .unwrap();
        assert_eq!(unit.counted_loops(), 2);
        let ir = unit.ir().to_string();
        assert!(ir.contains("loop x4"), "{ir}");
        assert!(ir.contains("loop xr"), "{ir}"); // inner trips in a register
        let n = unit.scalars().iter().find(|s| s.name == "n").unwrap();
        assert_eq!(n.final_value, Some(10));
        exec_all(&unit);
    }

    #[test]
    fn loop_under_if_demotes() {
        let unit = compile(
            "guarded",
            "int x = 3; int i; int s;\n\
             if (x > 0) { for (i = 0; i < 5; i += 1) { s += i; } }",
        )
        .unwrap();
        assert_eq!(unit.counted_loops(), 0);
        assert_eq!(unit.while_loops(), 1);
        let s = unit.scalars().iter().find(|s| s.name == "s").unwrap();
        assert_eq!(s.final_value, Some(10));
        exec_all(&unit);
    }

    #[test]
    fn compile_errors_are_diagnostics() {
        let err = compile("bad", "x = 1;").unwrap_err();
        assert!(err.message.contains("not declared"));
        let err = compile("oob", "int a[2]; a[5] = 1;").unwrap_err();
        assert!(err.message.contains("out of bounds"));
        let err = compile("spin", "int x; while (x == 0) { x = 0; }").unwrap_err();
        assert!(err.message.contains("budget"));
    }
}
