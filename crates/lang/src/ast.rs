//! The abstract syntax tree produced by the parser.
//!
//! Every node carries the [`Pos`] of its first token so later stages
//! (checker, interpreter, code generator) can attach line/column
//! information to their diagnostics without re-touching the source.

use std::fmt;

/// A source position: 1-based line and column (column counts bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based byte column within the line.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, col {}", self.line, self.col)
    }
}

/// A diagnostic: what went wrong and where.
///
/// Every failure path of the front end — lexing, parsing, checking,
/// reference evaluation and code generation — produces one of these;
/// the front end never panics on malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Where the problem is.
    pub pos: Pos,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic at `pos`.
    pub fn new(pos: Pos, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl std::error::Error for Diagnostic {}

/// Binary operators (each maps to one or two XR32 ALU instructions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*` (wrapping low 32 bits, like the XR32 `mul`)
    Mul,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<` (shift amount taken mod 32, like `sllv`)
    Shl,
    /// `>>` (arithmetic, amount mod 32, like `srav`)
    Shr,
    /// `<` (signed, yields 0/1)
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (logical, non-short-circuit, yields 0/1)
    LogAnd,
    /// `||` (logical, non-short-circuit, yields 0/1)
    LogOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation (wrapping).
    Neg,
    /// Logical not: `!x` is 1 when `x == 0`, else 0.
    Not,
    /// Bitwise complement.
    BitNot,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// What kind of expression.
    pub kind: ExprKind,
    /// Source position of the first token.
    pub pos: Pos,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Num(i32),
    /// Scalar variable read.
    Var(String),
    /// Array element read: `name[index]`.
    Index(String, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// What kind of statement.
    pub kind: StmtKind,
    /// Source position of the first token.
    pub pos: Pos,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `int name;` or `int name = expr;` — top level only.
    DeclScalar {
        /// Variable name.
        name: String,
        /// Optional initializer, executed where the declaration stands.
        init: Option<Expr>,
    },
    /// `int name[len];` or `int name[len] = { ... };` — top level only.
    /// Storage is static and initialized before execution starts
    /// (missing trailing initializers are zero).
    DeclArray {
        /// Array name.
        name: String,
        /// Element count.
        len: u32,
        /// Constant initializer words (length ≤ `len`).
        init: Vec<i32>,
    },
    /// `name = expr;` or `name[index] = expr;` (also produced by the
    /// `+=`/`-=` sugar).
    Assign {
        /// Target name.
        name: String,
        /// `Some` for an array element store.
        index: Option<Expr>,
        /// Value stored.
        value: Expr,
    },
    /// `if (cond) { ... } else { ... }` (braces mandatory).
    If {
        /// Condition (nonzero = taken).
        cond: Expr,
        /// Taken branch.
        then: Vec<Stmt>,
        /// Else branch (empty when absent).
        els: Vec<Stmt>,
    },
    /// `while (cond) { ... }`.
    While {
        /// Continue condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for (v = init; cond; v = step) { ... }` — all three clauses are
    /// mandatory and the init/step clauses are scalar assignments.
    For {
        /// Init clause.
        init: Box<Stmt>,
        /// Continue condition.
        cond: Expr,
        /// Step clause, executed after the body each iteration.
        step: Box<Stmt>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `break;` — leaves the innermost enclosing loop.
    Break,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_displays_position_first() {
        let d = Diagnostic::new(Pos { line: 3, col: 7 }, "unexpected `}`");
        assert_eq!(d.to_string(), "line 3, col 7: unexpected `}`");
    }
}
