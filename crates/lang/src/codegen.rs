//! AST → [`zolc_ir::LoopIr`] code generation.
//!
//! The interesting decision is per-`for` loop: a loop whose shape the
//! generator can prove counted — `v` starts at a loop-invariant value,
//! strictly advances by a constant toward a loop-invariant bound, and
//! is never written in the body — becomes a [`LoopNode`] (hardware-
//! mappable under ZOLC, `dbnz` under HwLoop); everything else demotes
//! to the explicit-branch [`Node::While`] form, exactly the shape
//! `retarget`'s handledness filters leave in software when they meet
//! it in a binary. Proofs about runtime-valued bounds come from a
//! small interval analysis over the scalar environment.
//!
//! Register convention (documented in `LANGUAGE.md`):
//!
//! | registers  | role                                              |
//! |------------|---------------------------------------------------|
//! | `r0`       | zero                                              |
//! | `r1`       | never touched (left for `retarget`'s init scratch)|
//! | `r2..r13`  | scalar variables, in declaration order            |
//! | `r14..r21` | counted-loop counter/bound pairs, by nest depth   |
//! | `r22..r30` | expression temporaries                            |
//! | `r31`      | never touched                                     |

use crate::ast::{BinOp, Diagnostic, Expr, ExprKind, Pos, Stmt, StmtKind, UnOp};
use crate::check::Symbols;
use std::collections::HashMap;
use zolc_ir::{Cond, IndexSpec, LoopNode, Node, Trips};
use zolc_isa::{reg, Instr, Reg};

/// First expression temporary (`r22`).
const TEMP_BASE: u8 = 22;
/// Temporaries `r22..=r30`.
const MAX_TEMPS: usize = 9;
/// Counted nests deeper than this demote to `while` form (counter and
/// bound registers are drawn from the `r14..r21` pool pairwise).
const MAX_COUNTED_DEPTH: usize = 4;

fn temp(slot: usize) -> Reg {
    reg(TEMP_BASE + slot as u8)
}

/// `%hi`/`%lo` decomposition compensating for the sign-extended 16-bit
/// offset of loads/stores: `(hi << 16) + sign_extend(lo) == addr`.
fn hi_lo(addr: u32) -> (u16, i16) {
    let hi = (addr.wrapping_add(0x8000) >> 16) as u16;
    let lo = addr as u16 as i16;
    (hi, lo)
}

fn fits_i16(v: i64) -> bool {
    i64::from(i16::MIN) <= v && v <= i64::from(i16::MAX)
}

// ========================= interval analysis ============================
//
// The range lattice itself lives in `zolc-analyze` ([`Interval`]): the
// same type backs the binary-level `Intervals` dataflow pass, so the
// front end's AST-level range reasoning and the analyzer's
// machine-level reasoning can never drift apart on arithmetic rules.

use zolc_analyze::Interval;

const TOP: Interval = Interval::TOP;

type Env = HashMap<String, Interval>;

/// Abstract evaluation of `e` over the scalar environment.
fn ieval(e: &Expr, env: &Env) -> Interval {
    match &e.kind {
        ExprKind::Num(n) => Interval::point(*n),
        ExprKind::Var(name) => env.get(name).copied().unwrap_or(TOP),
        ExprKind::Index(..) => TOP,
        ExprKind::Unary(op, operand) => {
            let v = ieval(operand, env);
            match op {
                UnOp::Neg => -v,
                UnOp::Not | UnOp::BitNot => match (*op, v.as_const()) {
                    (UnOp::Not, Some(c)) => Interval::point(i32::from(c == 0)),
                    (UnOp::BitNot, Some(c)) => Interval::point(!c),
                    (UnOp::Not, None) => Interval { lo: 0, hi: 1 },
                    _ => TOP,
                },
            }
        }
        ExprKind::Binary(op, lhs, rhs) => {
            let a = ieval(lhs, env);
            let b = ieval(rhs, env);
            match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::Eq
                | BinOp::Ne
                | BinOp::LogAnd
                | BinOp::LogOr => Interval { lo: 0, hi: 1 },
                BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr => {
                    match (a.as_const(), b.as_const()) {
                        (Some(x), Some(y)) => Interval::point(match op {
                            BinOp::And => x & y,
                            BinOp::Or => x | y,
                            BinOp::Xor => x ^ y,
                            BinOp::Shl => x.wrapping_shl(y as u32 & 31),
                            _ => x.wrapping_shr(y as u32 & 31),
                        }),
                        _ => TOP,
                    }
                }
            }
        }
    }
}

// ========================= AST walks ====================================

/// Does `stmts` (at any depth) assign scalar `name`? `for` init/step
/// clauses count as assignments.
fn assigns(stmts: &[Stmt], name: &str) -> bool {
    stmts.iter().any(|s| stmt_assigns(s, name))
}

fn stmt_assigns(s: &Stmt, name: &str) -> bool {
    match &s.kind {
        StmtKind::Assign {
            name: n,
            index: None,
            ..
        } => n == name,
        StmtKind::Assign { .. } | StmtKind::Break | StmtKind::DeclArray { .. } => false,
        StmtKind::DeclScalar { name: n, init } => n == name && init.is_some(),
        StmtKind::If { then, els, .. } => assigns(then, name) || assigns(els, name),
        StmtKind::While { body, .. } => assigns(body, name),
        StmtKind::For {
            init, step, body, ..
        } => stmt_assigns(init, name) || stmt_assigns(step, name) || assigns(body, name),
    }
}

/// Collects every scalar assigned anywhere in `stmts`.
fn assigned_names(stmts: &[Stmt], out: &mut Vec<String>) {
    for s in stmts {
        match &s.kind {
            StmtKind::Assign {
                name, index: None, ..
            } => out.push(name.clone()),
            StmtKind::DeclScalar {
                name,
                init: Some(_),
            } => out.push(name.clone()),
            StmtKind::If { then, els, .. } => {
                assigned_names(then, out);
                assigned_names(els, out);
            }
            StmtKind::While { body, .. } => assigned_names(body, out),
            StmtKind::For {
                init, step, body, ..
            } => {
                assigned_names(std::slice::from_ref(init), out);
                assigned_names(std::slice::from_ref(step), out);
                assigned_names(body, out);
            }
            _ => {}
        }
    }
}

/// Number of occurrences of scalar `name` in an expression.
fn expr_uses(e: &Expr, name: &str) -> usize {
    match &e.kind {
        ExprKind::Num(_) => 0,
        ExprKind::Var(n) => usize::from(n == name),
        ExprKind::Index(_, index) => expr_uses(index, name),
        ExprKind::Unary(_, operand) => expr_uses(operand, name),
        ExprKind::Binary(_, lhs, rhs) => expr_uses(lhs, name) + expr_uses(rhs, name),
    }
}

/// Number of occurrences of scalar `name` (reads and writes) in
/// `stmts`.
fn stmt_list_uses(stmts: &[Stmt], name: &str) -> usize {
    stmts.iter().map(|s| stmt_uses(s, name)).sum()
}

fn stmt_uses(s: &Stmt, name: &str) -> usize {
    match &s.kind {
        // A bare declaration reserves a register but is not a use; an
        // initialized one assigns, which is.
        StmtKind::DeclScalar { name: n, init } => {
            usize::from(n == name && init.is_some())
                + init.as_ref().map_or(0, |e| expr_uses(e, name))
        }
        StmtKind::DeclArray { .. } | StmtKind::Break => 0,
        StmtKind::Assign {
            name: n,
            index,
            value,
        } => {
            usize::from(n == name)
                + index.as_ref().map_or(0, |e| expr_uses(e, name))
                + expr_uses(value, name)
        }
        StmtKind::If { cond, then, els } => {
            expr_uses(cond, name) + stmt_list_uses(then, name) + stmt_list_uses(els, name)
        }
        StmtKind::While { cond, body } => expr_uses(cond, name) + stmt_list_uses(body, name),
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            stmt_uses(init, name)
                + expr_uses(cond, name)
                + stmt_uses(step, name)
                + stmt_list_uses(body, name)
        }
    }
}

/// Every scalar the expression mentions.
fn expr_vars(e: &Expr, out: &mut Vec<String>) {
    match &e.kind {
        ExprKind::Num(_) => {}
        ExprKind::Var(n) => out.push(n.clone()),
        ExprKind::Index(_, index) => expr_vars(index, out),
        ExprKind::Unary(_, operand) => expr_vars(operand, out),
        ExprKind::Binary(_, lhs, rhs) => {
            expr_vars(lhs, out);
            expr_vars(rhs, out);
        }
    }
}

fn expr_has_load(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Num(_) | ExprKind::Var(_) => false,
        ExprKind::Index(..) => true,
        ExprKind::Unary(_, operand) => expr_has_load(operand),
        ExprKind::Binary(_, lhs, rhs) => expr_has_load(lhs) || expr_has_load(rhs),
    }
}

// ========================= the generator ================================

/// Code-generation result.
pub(crate) struct Generated {
    /// Top-level IR nodes.
    pub nodes: Vec<Node>,
    /// Scalars whose value lives only in the hardware index unit under
    /// ZOLC (excluded from the expectation).
    pub index_only: Vec<String>,
    /// `for` loops emitted as counted [`LoopNode`]s.
    pub counted_loops: usize,
    /// Loops emitted in explicit-branch form (`while`s, demoted `for`s).
    pub while_loops: usize,
}

struct Gen<'a> {
    syms: &'a Symbols,
    program: &'a [Stmt],
    env: Env,
    in_if: bool,
    counted_depth: usize,
    counted_loops: usize,
    while_loops: usize,
    index_only: Vec<String>,
}

impl Gen<'_> {
    fn scalar_reg(&self, name: &str) -> Reg {
        self.syms.scalar(name).expect("checked").reg
    }

    // ---- expressions -------------------------------------------------

    fn need_slot(&self, slot: usize, pos: Pos) -> Result<(), Diagnostic> {
        if slot >= MAX_TEMPS {
            Err(Diagnostic::new(
                pos,
                "expression too complex for the temporary register pool (split it into \
                 intermediate assignments)",
            ))
        } else {
            Ok(())
        }
    }

    fn load_imm(&self, dst: Reg, value: i32, out: &mut Vec<Instr>) {
        if fits_i16(i64::from(value)) {
            out.push(Instr::Addi {
                rt: dst,
                rs: Reg::ZERO,
                imm: value as i16,
            });
        } else {
            out.push(Instr::Lui {
                rt: dst,
                imm: (value as u32 >> 16) as u16,
            });
            if value as u16 != 0 {
                out.push(Instr::Ori {
                    rt: dst,
                    rs: dst,
                    imm: value as u16,
                });
            }
        }
    }

    /// Materializes `e` as a readable register without committing to a
    /// destination: scalar variables come back as their home register
    /// (no code), everything else is evaluated into `temp(slot)`.
    fn operand(&self, e: &Expr, slot: usize, out: &mut Vec<Instr>) -> Result<Reg, Diagnostic> {
        match &e.kind {
            ExprKind::Var(name) => Ok(self.scalar_reg(name)),
            ExprKind::Num(0) => Ok(Reg::ZERO),
            _ => {
                self.need_slot(slot, e.pos)?;
                self.eval_into(temp(slot), e, slot + 1, out)?;
                Ok(temp(slot))
            }
        }
    }

    /// Evaluates `e` into `dst`, using temporaries `slot..` for
    /// intermediates. `dst` is written only by the final instruction,
    /// so it may alias a register the expression reads.
    fn eval_into(
        &self,
        dst: Reg,
        e: &Expr,
        slot: usize,
        out: &mut Vec<Instr>,
    ) -> Result<(), Diagnostic> {
        match &e.kind {
            ExprKind::Num(n) => {
                self.load_imm(dst, *n, out);
                Ok(())
            }
            ExprKind::Var(name) => {
                let src = self.scalar_reg(name);
                if src != dst {
                    out.push(Instr::Add {
                        rd: dst,
                        rs: src,
                        rt: Reg::ZERO,
                    });
                }
                Ok(())
            }
            ExprKind::Index(name, index) => {
                let addr_reg = self.element_addr(e.pos, name, index, slot, out)?;
                out.push(Instr::Lw {
                    rt: dst,
                    rs: addr_reg.0,
                    off: addr_reg.1,
                });
                Ok(())
            }
            ExprKind::Unary(op, operand) => {
                let r = self.operand(operand, slot, out)?;
                out.push(match op {
                    UnOp::Neg => Instr::Sub {
                        rd: dst,
                        rs: Reg::ZERO,
                        rt: r,
                    },
                    UnOp::Not => Instr::Sltiu {
                        rt: dst,
                        rs: r,
                        imm: 1,
                    },
                    UnOp::BitNot => Instr::Nor {
                        rd: dst,
                        rs: r,
                        rt: Reg::ZERO,
                    },
                });
                Ok(())
            }
            ExprKind::Binary(op, lhs, rhs) => self.binary_into(dst, *op, lhs, rhs, slot, out),
        }
    }

    fn binary_into(
        &self,
        dst: Reg,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        slot: usize,
        out: &mut Vec<Instr>,
    ) -> Result<(), Diagnostic> {
        // Immediate forms for the common `x ± const` and const shifts.
        if let ExprKind::Num(n) = rhs.kind {
            let imm = match op {
                BinOp::Add => Some(i64::from(n)),
                BinOp::Sub => Some(-i64::from(n)),
                _ => None,
            };
            if let Some(imm) = imm.filter(|&v| fits_i16(v)) {
                let ra = self.operand(lhs, slot, out)?;
                out.push(Instr::Addi {
                    rt: dst,
                    rs: ra,
                    imm: imm as i16,
                });
                return Ok(());
            }
            if matches!(op, BinOp::Shl | BinOp::Shr) {
                let ra = self.operand(lhs, slot, out)?;
                let sh = (n as u32 & 31) as u8;
                out.push(match op {
                    BinOp::Shl => Instr::Sll {
                        rd: dst,
                        rt: ra,
                        sh,
                    },
                    _ => Instr::Sra {
                        rd: dst,
                        rt: ra,
                        sh,
                    },
                });
                return Ok(());
            }
        }
        let ra = self.operand(lhs, slot, out)?;
        let rb = self.operand(rhs, slot + 1, out)?;
        match op {
            BinOp::Add => out.push(Instr::Add {
                rd: dst,
                rs: ra,
                rt: rb,
            }),
            BinOp::Sub => out.push(Instr::Sub {
                rd: dst,
                rs: ra,
                rt: rb,
            }),
            BinOp::Mul => out.push(Instr::Mul {
                rd: dst,
                rs: ra,
                rt: rb,
            }),
            BinOp::And => out.push(Instr::And {
                rd: dst,
                rs: ra,
                rt: rb,
            }),
            BinOp::Or => out.push(Instr::Or {
                rd: dst,
                rs: ra,
                rt: rb,
            }),
            BinOp::Xor => out.push(Instr::Xor {
                rd: dst,
                rs: ra,
                rt: rb,
            }),
            BinOp::Shl => out.push(Instr::Sllv {
                rd: dst,
                rt: ra,
                rs: rb,
            }),
            BinOp::Shr => out.push(Instr::Srav {
                rd: dst,
                rt: ra,
                rs: rb,
            }),
            BinOp::Lt => out.push(Instr::Slt {
                rd: dst,
                rs: ra,
                rt: rb,
            }),
            BinOp::Gt => out.push(Instr::Slt {
                rd: dst,
                rs: rb,
                rt: ra,
            }),
            BinOp::Le => {
                // a <= b  ⇔  !(b < a)
                out.push(Instr::Slt {
                    rd: dst,
                    rs: rb,
                    rt: ra,
                });
                out.push(Instr::Xori {
                    rt: dst,
                    rs: dst,
                    imm: 1,
                });
            }
            BinOp::Ge => {
                out.push(Instr::Slt {
                    rd: dst,
                    rs: ra,
                    rt: rb,
                });
                out.push(Instr::Xori {
                    rt: dst,
                    rs: dst,
                    imm: 1,
                });
            }
            BinOp::Eq => {
                out.push(Instr::Sub {
                    rd: dst,
                    rs: ra,
                    rt: rb,
                });
                out.push(Instr::Sltiu {
                    rt: dst,
                    rs: dst,
                    imm: 1,
                });
            }
            BinOp::Ne => {
                out.push(Instr::Sub {
                    rd: dst,
                    rs: ra,
                    rt: rb,
                });
                out.push(Instr::Sltu {
                    rd: dst,
                    rs: Reg::ZERO,
                    rt: dst,
                });
            }
            BinOp::LogAnd => {
                // Normalize b first: dst may alias ra *or* rb, and the
                // final `and` must read both normalized values.
                self.need_slot(slot + 1, rhs.pos)?;
                out.push(Instr::Sltu {
                    rd: temp(slot + 1),
                    rs: Reg::ZERO,
                    rt: rb,
                });
                out.push(Instr::Sltu {
                    rd: dst,
                    rs: Reg::ZERO,
                    rt: ra,
                });
                out.push(Instr::And {
                    rd: dst,
                    rs: dst,
                    rt: temp(slot + 1),
                });
            }
            BinOp::LogOr => {
                out.push(Instr::Or {
                    rd: dst,
                    rs: ra,
                    rt: rb,
                });
                out.push(Instr::Sltu {
                    rd: dst,
                    rs: Reg::ZERO,
                    rt: dst,
                });
            }
        }
        Ok(())
    }

    /// Computes the address of `name[index]` and returns `(base, off)`
    /// for the load/store. Uses `temp(slot)` and `temp(slot + 1)`.
    fn element_addr(
        &self,
        pos: Pos,
        name: &str,
        index: &Expr,
        slot: usize,
        out: &mut Vec<Instr>,
    ) -> Result<(Reg, i16), Diagnostic> {
        let base = self.syms.array(name).expect("checked").addr;
        if let ExprKind::Num(k) = index.kind {
            let addr = base.wrapping_add((k as u32).wrapping_mul(4));
            let (hi, lo) = hi_lo(addr);
            self.need_slot(slot, pos)?;
            out.push(Instr::Lui {
                rt: temp(slot),
                imm: hi,
            });
            return Ok((temp(slot), lo));
        }
        self.need_slot(slot + 1, pos)?;
        let ri = self.operand(index, slot, out)?;
        out.push(Instr::Sll {
            rd: temp(slot),
            rt: ri,
            sh: 2,
        });
        let (hi, lo) = hi_lo(base);
        out.push(Instr::Lui {
            rt: temp(slot + 1),
            imm: hi,
        });
        out.push(Instr::Add {
            rd: temp(slot),
            rs: temp(slot),
            rt: temp(slot + 1),
        });
        Ok((temp(slot), lo))
    }

    /// Lowers a boolean context: emits any needed setup code into `out`
    /// and returns the [`Cond`] that holds when `e` is nonzero.
    fn cond(&self, e: &Expr, out: &mut Vec<Instr>) -> Result<Cond, Diagnostic> {
        let zero = |x: &Expr| matches!(x.kind, ExprKind::Num(0));
        match &e.kind {
            ExprKind::Num(n) => Ok(if *n != 0 {
                Cond::Eq(Reg::ZERO, Reg::ZERO)
            } else {
                Cond::Ne(Reg::ZERO, Reg::ZERO)
            }),
            ExprKind::Binary(BinOp::Eq, lhs, rhs) => {
                let ra = self.operand(lhs, 0, out)?;
                let rb = self.operand(rhs, 1, out)?;
                Ok(Cond::Eq(ra, rb))
            }
            ExprKind::Binary(BinOp::Ne, lhs, rhs) => {
                let ra = self.operand(lhs, 0, out)?;
                let rb = self.operand(rhs, 1, out)?;
                Ok(Cond::Ne(ra, rb))
            }
            // Sign tests against zero map straight onto branch kinds.
            ExprKind::Binary(BinOp::Lt, lhs, rhs) if zero(rhs) => {
                Ok(Cond::Ltz(self.operand(lhs, 0, out)?))
            }
            ExprKind::Binary(BinOp::Le, lhs, rhs) if zero(rhs) => {
                Ok(Cond::Lez(self.operand(lhs, 0, out)?))
            }
            ExprKind::Binary(BinOp::Gt, lhs, rhs) if zero(rhs) => {
                Ok(Cond::Gtz(self.operand(lhs, 0, out)?))
            }
            ExprKind::Binary(BinOp::Ge, lhs, rhs) if zero(rhs) => {
                Ok(Cond::Gez(self.operand(lhs, 0, out)?))
            }
            ExprKind::Binary(BinOp::Lt, lhs, rhs) if zero(lhs) => {
                Ok(Cond::Gtz(self.operand(rhs, 0, out)?))
            }
            ExprKind::Binary(BinOp::Gt, lhs, rhs) if zero(lhs) => {
                Ok(Cond::Ltz(self.operand(rhs, 0, out)?))
            }
            _ => {
                self.eval_into(temp(0), e, 1, out)?;
                Ok(Cond::Ne(temp(0), Reg::ZERO))
            }
        }
    }

    // ---- statements --------------------------------------------------

    fn block(&mut self, stmts: &[Stmt]) -> Result<Vec<Node>, Diagnostic> {
        let mut nodes = Vec::new();
        let mut pending = Vec::new();
        for s in stmts {
            self.stmt(s, &mut nodes, &mut pending)?;
        }
        flush(&mut nodes, &mut pending);
        Ok(nodes)
    }

    fn stmt(
        &mut self,
        s: &Stmt,
        nodes: &mut Vec<Node>,
        pending: &mut Vec<Instr>,
    ) -> Result<(), Diagnostic> {
        match &s.kind {
            StmtKind::DeclArray { .. } => Ok(()),
            StmtKind::DeclScalar { name, init } => {
                if let Some(e) = init {
                    self.assign_scalar(name, e, pending)?;
                }
                Ok(())
            }
            StmtKind::Assign {
                name,
                index: None,
                value,
            } => self.assign_scalar(name, value, pending),
            StmtKind::Assign {
                name,
                index: Some(ix),
                value,
            } => {
                let rv = self.operand(value, 0, pending)?;
                let (base, off) = self.element_addr(s.pos, name, ix, 1, pending)?;
                pending.push(Instr::Sw {
                    rt: rv,
                    rs: base,
                    off,
                });
                Ok(())
            }
            StmtKind::Break => {
                flush(nodes, pending);
                nodes.push(Node::BreakIf {
                    cond: Cond::Eq(Reg::ZERO, Reg::ZERO),
                    levels: 1,
                });
                Ok(())
            }
            StmtKind::If { cond, then, els } => {
                // `if (c) { break; }` maps to the IR's guarded break.
                if els.is_empty()
                    && matches!(then.as_slice(), [one] if matches!(one.kind, StmtKind::Break))
                {
                    let c = self.cond(cond, pending)?;
                    flush(nodes, pending);
                    nodes.push(Node::BreakIf { cond: c, levels: 1 });
                    return Ok(());
                }
                let c = self.cond(cond, pending)?;
                flush(nodes, pending);
                let entry_env = self.env.clone();
                let saved_in_if = self.in_if;
                self.in_if = true;
                let then_nodes = self.block(then)?;
                let then_env = std::mem::replace(&mut self.env, entry_env);
                let els_nodes = self.block(els)?;
                self.in_if = saved_in_if;
                let els_env = std::mem::take(&mut self.env);
                self.env = join_envs(&then_env, &els_env);
                nodes.push(Node::If {
                    cond: c,
                    then: then_nodes,
                    els: els_nodes,
                });
                Ok(())
            }
            StmtKind::While { cond, body } => self.while_loop(cond, body, nodes, pending),
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => self.for_loop(s.pos, init, cond, step, body, nodes, pending),
        }
    }

    fn assign_scalar(
        &mut self,
        name: &str,
        value: &Expr,
        pending: &mut Vec<Instr>,
    ) -> Result<(), Diagnostic> {
        let dst = self.scalar_reg(name);
        // `v = v ± const` is the canonical induction idiom; emit the
        // single `addi` the retargeter and oracle pattern-match.
        let mut done = false;
        if let ExprKind::Binary(op @ (BinOp::Add | BinOp::Sub), lhs, rhs) = &value.kind {
            if let (ExprKind::Var(l), ExprKind::Num(n)) = (&lhs.kind, &rhs.kind) {
                let imm = if *op == BinOp::Add {
                    i64::from(*n)
                } else {
                    -i64::from(*n)
                };
                if l == name && fits_i16(imm) {
                    pending.push(Instr::Addi {
                        rt: dst,
                        rs: dst,
                        imm: imm as i16,
                    });
                    done = true;
                }
            }
        }
        if !done {
            self.eval_into(dst, value, 0, pending)?;
        }
        let iv = ieval(value, &self.env);
        self.env.insert(name.to_owned(), iv);
        Ok(())
    }

    fn while_loop(
        &mut self,
        cond: &Expr,
        body: &[Stmt],
        nodes: &mut Vec<Node>,
        pending: &mut Vec<Instr>,
    ) -> Result<(), Diagnostic> {
        flush(nodes, pending);
        // Everything the body can assign is unknown from here on (the
        // condition and body run an unknown number of times).
        let mut killed = Vec::new();
        assigned_names(body, &mut killed);
        for name in &killed {
            self.env.insert(name.clone(), TOP);
        }
        let mut header = Vec::new();
        let c = self.cond(cond, &mut header)?;
        let saved_in_if = self.in_if;
        self.in_if = false;
        let body_nodes = self.block(body)?;
        self.in_if = saved_in_if;
        for name in &killed {
            self.env.insert(name.clone(), TOP);
        }
        self.while_loops += 1;
        nodes.push(Node::While {
            header,
            cond: c,
            body: body_nodes,
        });
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn for_loop(
        &mut self,
        pos: Pos,
        init: &Stmt,
        cond: &Expr,
        step: &Stmt,
        body: &[Stmt],
        nodes: &mut Vec<Node>,
        pending: &mut Vec<Instr>,
    ) -> Result<(), Diagnostic> {
        let _ = pos;
        if let Some(shape) = self.counted_shape(init, cond, step, body) {
            return self.counted_loop(shape, body, nodes, pending);
        }
        // Demote: `for (init; c; step) B` ≡ `init; while (c) { B; step }`
        // (`break` correctly skips the appended step).
        self.stmt(init, nodes, pending)?;
        let mut while_body: Vec<Stmt> = body.to_vec();
        while_body.push(step.clone());
        self.while_loop(cond, &while_body, nodes, pending)
    }

    fn counted_loop(
        &mut self,
        shape: CountedShape,
        body: &[Stmt],
        nodes: &mut Vec<Node>,
        pending: &mut Vec<Instr>,
    ) -> Result<(), Diagnostic> {
        let CountedShape {
            var,
            init_e,
            bound_e,
            inclusive,
            up,
            step_c,
            trips,
            iter,
            after,
            index_hw,
        } = shape;
        let var_reg = self.scalar_reg(&var);
        let counter = reg(14 + 2 * self.counted_depth as u8);
        let bound_reg = reg(15 + 2 * self.counted_depth as u8);

        // Preheader: trip-count register for runtime bounds, and the
        // index variable's initial value when it is software-maintained.
        let trips = match trips {
            TripSource::Const(n) => Trips::Const(n),
            TripSource::Runtime => {
                let step_abs = step_c.unsigned_abs();
                if up {
                    if matches!(init_e.kind, ExprKind::Num(0)) {
                        self.eval_into(bound_reg, &bound_e, 0, pending)?;
                    } else {
                        let rb = self.operand(&bound_e, 0, pending)?;
                        let ra = self.operand(&init_e, 1, pending)?;
                        pending.push(Instr::Sub {
                            rd: bound_reg,
                            rs: rb,
                            rt: ra,
                        });
                    }
                } else {
                    let ra = self.operand(&init_e, 0, pending)?;
                    let rb = self.operand(&bound_e, 1, pending)?;
                    pending.push(Instr::Sub {
                        rd: bound_reg,
                        rs: ra,
                        rt: rb,
                    });
                }
                if inclusive {
                    pending.push(Instr::Addi {
                        rt: bound_reg,
                        rs: bound_reg,
                        imm: 1,
                    });
                }
                if step_abs > 1 {
                    // trips = (span + |c| - 1) >> log2(|c|); span ≥ 1 was
                    // proved, so the rounding add cannot go negative.
                    pending.push(Instr::Addi {
                        rt: bound_reg,
                        rs: bound_reg,
                        imm: (step_abs - 1) as i16,
                    });
                    pending.push(Instr::Sra {
                        rd: bound_reg,
                        rt: bound_reg,
                        sh: step_abs.trailing_zeros() as u8,
                    });
                }
                Trips::Reg(bound_reg)
            }
        };

        let index = if index_hw {
            self.index_only.push(var.clone());
            Some(IndexSpec {
                reg: var_reg,
                init: match init_e.kind {
                    ExprKind::Num(n) => n,
                    _ => unreachable!("index_hw requires a constant init"),
                },
                step: step_c,
            })
        } else {
            self.assign_scalar(&var, &init_e, pending)?;
            None
        };
        flush(nodes, pending);

        // Body, with the environment scoped to one iteration.
        let mut killed = Vec::new();
        assigned_names(body, &mut killed);
        for name in &killed {
            self.env.insert(name.clone(), TOP);
        }
        self.env.insert(var.clone(), iter);
        self.counted_depth += 1;
        let mut body_nodes = self.block(body)?;
        self.counted_depth -= 1;
        if !index_hw {
            // Software index maintenance at the body tail (a `break`
            // skips it, matching C `for` semantics).
            let mut tail = Vec::new();
            if fits_i16(i64::from(step_c)) {
                tail.push(Instr::Addi {
                    rt: var_reg,
                    rs: var_reg,
                    imm: step_c as i16,
                });
            } else {
                self.load_imm(temp(0), step_c, &mut tail);
                tail.push(Instr::Add {
                    rd: var_reg,
                    rs: var_reg,
                    rt: temp(0),
                });
            }
            body_nodes.push(Node::Code(tail));
        }
        for name in &killed {
            self.env.insert(name.clone(), TOP);
        }
        self.env.insert(var.clone(), after);

        self.counted_loops += 1;
        nodes.push(Node::Loop(LoopNode {
            trips,
            index,
            counter,
            body: body_nodes,
        }));
        Ok(())
    }

    /// Decides whether a `for` loop is counted, and packages everything
    /// the emitter needs if so. Returns `None` to demote.
    fn counted_shape(
        &self,
        init: &Stmt,
        cond: &Expr,
        step: &Stmt,
        body: &[Stmt],
    ) -> Option<CountedShape> {
        if self.in_if || self.counted_depth >= MAX_COUNTED_DEPTH {
            return None;
        }
        let StmtKind::Assign {
            name: var,
            index: None,
            value: init_e,
        } = &init.kind
        else {
            return None;
        };
        // Step: `v = v ± const`, nonzero, expressible as an i16 `addi`
        // (the IR's software latch and IndexSpec both require it).
        let StmtKind::Assign {
            name: step_var,
            index: None,
            value: step_e,
        } = &step.kind
        else {
            return None;
        };
        if step_var != var {
            return None;
        }
        let ExprKind::Binary(step_op @ (BinOp::Add | BinOp::Sub), step_lhs, step_rhs) =
            &step_e.kind
        else {
            return None;
        };
        if !matches!(&step_lhs.kind, ExprKind::Var(v) if v == var) {
            return None;
        }
        let ExprKind::Num(step_n) = step_rhs.kind else {
            return None;
        };
        let step_c = if *step_op == BinOp::Add {
            step_n
        } else {
            step_n.checked_neg()?
        };
        if step_c == 0 || !fits_i16(i64::from(step_c)) {
            return None;
        }
        // Condition: `v < bound`, `v <= bound`, `v > bound`, `v >= bound`.
        let ExprKind::Binary(
            cmp @ (BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge),
            cond_lhs,
            bound_e,
        ) = &cond.kind
        else {
            return None;
        };
        if !matches!(&cond_lhs.kind, ExprKind::Var(v) if v == var) {
            return None;
        }
        let up = matches!(cmp, BinOp::Lt | BinOp::Le);
        let inclusive = matches!(cmp, BinOp::Le | BinOp::Ge);
        if up != (step_c > 0) {
            return None;
        }
        // Loop invariance: `v` is never written in the body, the bound
        // reads no memory and no scalar the body writes, and the init
        // expression likewise (it is re-evaluated in the preheader for
        // runtime trip counts, which re-runs per outer iteration).
        if assigns(body, var) {
            return None;
        }
        for e in [bound_e.as_ref(), init_e] {
            if expr_has_load(e) {
                return None;
            }
            let mut vars = Vec::new();
            expr_vars(e, &mut vars);
            if vars.iter().any(|n| n == var || assigns(body, n)) {
                return None;
            }
        }
        // Trip count: ceil(span / |c|) where span counts from init to
        // bound in the direction of travel.
        let ia = ieval(init_e, &self.env);
        let ib = ieval(bound_e, &self.env);
        let adj = i64::from(inclusive);
        let step_abs = i64::from(step_c.unsigned_abs());
        let (span_lo, span_hi) = if up {
            (ib.lo - ia.hi + adj, ib.hi - ia.lo + adj)
        } else {
            (ia.lo - ib.hi + adj, ia.hi - ib.lo + adj)
        };
        let trips = match (ia.as_const(), ib.as_const()) {
            (Some(_), Some(_)) => {
                debug_assert_eq!(span_lo, span_hi);
                if span_lo < 1 {
                    return None; // zero-trip: the while form handles it
                }
                let trips = (span_lo + step_abs - 1) / step_abs;
                TripSource::Const(u32::try_from(trips).ok()?)
            }
            _ => {
                // Runtime bound: must prove ≥ 1 trip, keep the rounding
                // add in range, and divide by a power of two.
                if span_lo < 1 || span_hi + step_abs - 1 > i64::from(i32::MAX) {
                    return None;
                }
                if !step_abs.unsigned_abs().is_power_of_two() || !fits_i16(step_abs - 1) {
                    return None;
                }
                TripSource::Runtime
            }
        };
        // Value range of `v` during an iteration, and after the loop.
        let iter = if up {
            Interval {
                lo: ia.lo,
                hi: ib.hi - 1 + adj,
            }
        } else {
            Interval {
                lo: ib.lo + 1 - adj,
                hi: ia.hi,
            }
        }
        .normalize();
        let after = match trips {
            TripSource::Const(n) => {
                let fin = ia
                    .as_const()
                    .map(|a| i64::from(a) + i64::from(n) * i64::from(step_c));
                match fin {
                    Some(f) if (i64::from(i32::MIN)..=i64::from(i32::MAX)).contains(&f) => {
                        Interval::point(f as i32)
                    }
                    _ => TOP,
                }
            }
            TripSource::Runtime => TOP,
        };
        // Hardware index: constant init, and `v` appears nowhere outside
        // this `for` statement (its final value is then unobservable, so
        // the ZOLC index unit may own the register outright).
        let total_uses = stmt_list_uses(self.program, var);
        let loop_uses = stmt_uses(
            &Stmt {
                kind: StmtKind::For {
                    init: Box::new(init.clone()),
                    cond: cond.clone(),
                    step: Box::new(step.clone()),
                    body: body.to_vec(),
                },
                pos: init.pos,
            },
            var,
        );
        let index_hw = matches!(init_e.kind, ExprKind::Num(_)) && total_uses == loop_uses;
        Some(CountedShape {
            var: var.clone(),
            init_e: init_e.clone(),
            bound_e: bound_e.as_ref().clone(),
            inclusive,
            up,
            step_c,
            trips,
            iter,
            after,
            index_hw,
        })
    }
}

enum TripSource {
    Const(u32),
    Runtime,
}

struct CountedShape {
    var: String,
    init_e: Expr,
    bound_e: Expr,
    inclusive: bool,
    up: bool,
    step_c: i32,
    trips: TripSource,
    iter: Interval,
    after: Interval,
    index_hw: bool,
}

fn flush(nodes: &mut Vec<Node>, pending: &mut Vec<Instr>) {
    if !pending.is_empty() {
        nodes.push(Node::Code(std::mem::take(pending)));
    }
}

fn join_envs(a: &Env, b: &Env) -> Env {
    let mut out = Env::new();
    for (name, &iv) in a {
        let joined = b.get(name).map_or(TOP, |&other| iv.join(other));
        out.insert(name.clone(), joined);
    }
    out
}

/// Generates IR for a checked program.
pub(crate) fn generate(program: &[Stmt], syms: &Symbols) -> Result<Generated, Diagnostic> {
    let mut generator = Gen {
        syms,
        program,
        env: syms
            .scalars
            .iter()
            .map(|s| (s.name.clone(), Interval::point(0)))
            .collect(),
        in_if: false,
        counted_depth: 0,
        counted_loops: 0,
        while_loops: 0,
        index_only: Vec::new(),
    };
    let nodes = generator.block(program)?;
    Ok(Generated {
        nodes,
        index_only: generator.index_only,
        counted_loops: generator.counted_loops,
        while_loops: generator.while_loops,
    })
}
