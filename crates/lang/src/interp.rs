//! The reference interpreter.
//!
//! Programs in this language are closed (no inputs), so the final
//! architectural state is fully determined at compile time: the front
//! end *runs* every accepted program on this AST interpreter and turns
//! the final state into the [`zolc_kernels::Expectation`] that gates
//! every executor tier bit-for-bit. The arithmetic here mirrors the
//! XR32 ALU exactly (wrapping `+ - *`, shift amounts mod 32,
//! arithmetic `>>`, signed comparisons yielding 0/1).

use crate::ast::{BinOp, Diagnostic, Expr, ExprKind, Stmt, StmtKind, UnOp};
use crate::check::Symbols;
use std::collections::HashMap;

/// Evaluation budget in executed statements; a program that exceeds it
/// (a non-terminating `while`, typically) is rejected at compile time.
pub(crate) const STEP_BUDGET: u64 = 2_000_000;

/// Final interpreter state: every scalar and every array.
#[derive(Debug, Clone, Default)]
pub(crate) struct FinalState {
    /// Scalar name → final value.
    pub scalars: HashMap<String, i32>,
    /// Array name → final contents.
    pub arrays: HashMap<String, Vec<i32>>,
}

enum Flow {
    Normal,
    Break,
}

struct Interp {
    state: FinalState,
    steps: u64,
}

impl Interp {
    fn eval(&self, e: &Expr) -> Result<i32, Diagnostic> {
        Ok(match &e.kind {
            ExprKind::Num(n) => *n,
            ExprKind::Var(name) => self.state.scalars[name.as_str()],
            ExprKind::Index(name, index) => {
                let ix = self.eval(index)?;
                let arr = &self.state.arrays[name.as_str()];
                *arr.get(
                    usize::try_from(ix)
                        .ok()
                        .filter(|&i| i < arr.len())
                        .ok_or_else(|| {
                            Diagnostic::new(
                                e.pos,
                                format!("`{name}[{ix}]` is out of bounds (length {})", arr.len()),
                            )
                        })?,
                )
                .expect("bounds just checked")
            }
            ExprKind::Unary(op, operand) => {
                let v = self.eval(operand)?;
                match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => i32::from(v == 0),
                    UnOp::BitNot => !v,
                }
            }
            ExprKind::Binary(op, lhs, rhs) => {
                let a = self.eval(lhs)?;
                let b = self.eval(rhs)?;
                match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::Shl => a.wrapping_shl(b as u32 & 31),
                    BinOp::Shr => a.wrapping_shr(b as u32 & 31),
                    BinOp::Lt => i32::from(a < b),
                    BinOp::Le => i32::from(a <= b),
                    BinOp::Gt => i32::from(a > b),
                    BinOp::Ge => i32::from(a >= b),
                    BinOp::Eq => i32::from(a == b),
                    BinOp::Ne => i32::from(a != b),
                    BinOp::LogAnd => i32::from(a != 0 && b != 0),
                    BinOp::LogOr => i32::from(a != 0 || b != 0),
                }
            }
        })
    }

    fn tick(&mut self, s: &Stmt) -> Result<(), Diagnostic> {
        self.steps += 1;
        if self.steps > STEP_BUDGET {
            Err(Diagnostic::new(
                s.pos,
                format!("program exceeds the {STEP_BUDGET}-statement reference budget (non-terminating loop?)"),
            ))
        } else {
            Ok(())
        }
    }

    fn stmts(&mut self, stmts: &[Stmt]) -> Result<Flow, Diagnostic> {
        for s in stmts {
            if let Flow::Break = self.stmt(s)? {
                return Ok(Flow::Break);
            }
        }
        Ok(Flow::Normal)
    }

    fn stmt(&mut self, s: &Stmt) -> Result<Flow, Diagnostic> {
        self.tick(s)?;
        match &s.kind {
            StmtKind::DeclScalar { name, init } => {
                if let Some(e) = init {
                    let v = self.eval(e)?;
                    self.state.scalars.insert(name.clone(), v);
                }
                Ok(Flow::Normal)
            }
            StmtKind::DeclArray { .. } => Ok(Flow::Normal),
            StmtKind::Assign { name, index, value } => {
                let v = self.eval(value)?;
                match index {
                    None => {
                        self.state.scalars.insert(name.clone(), v);
                    }
                    Some(ix_expr) => {
                        let ix = self.eval(ix_expr)?;
                        let arr = self.state.arrays.get_mut(name).expect("checked");
                        let len = arr.len();
                        let slot =
                            usize::try_from(ix)
                                .ok()
                                .filter(|&i| i < len)
                                .ok_or_else(|| {
                                    Diagnostic::new(
                                        s.pos,
                                        format!("`{name}[{ix}]` is out of bounds (length {len})"),
                                    )
                                })?;
                        arr[slot] = v;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::If { cond, then, els } => {
                if self.eval(cond)? != 0 {
                    self.stmts(then)
                } else {
                    self.stmts(els)
                }
            }
            StmtKind::While { cond, body } => {
                while self.eval(cond)? != 0 {
                    self.tick(s)?;
                    if let Flow::Break = self.stmts(body)? {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.stmt(init)?;
                while self.eval(cond)? != 0 {
                    self.tick(s)?;
                    if let Flow::Break = self.stmts(body)? {
                        break;
                    }
                    self.stmt(step)?;
                }
                Ok(Flow::Normal)
            }
            StmtKind::Break => Ok(Flow::Break),
        }
    }
}

/// Runs `program` to completion and returns the final state, or a
/// diagnostic for out-of-bounds accesses and budget exhaustion.
///
/// Every declared scalar starts at 0 (matching the zeroed register
/// file) and every array starts as its (zero-padded) initializer.
pub(crate) fn run(program: &[Stmt], symbols: &Symbols) -> Result<FinalState, Diagnostic> {
    let mut interp = Interp {
        state: FinalState::default(),
        steps: 0,
    };
    for s in &symbols.scalars {
        interp.state.scalars.insert(s.name.clone(), 0);
    }
    for a in &symbols.arrays {
        interp.state.arrays.insert(a.name.clone(), a.init.clone());
    }
    interp.stmts(program)?;
    Ok(interp.state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check;
    use crate::parser::parse;

    fn run_src(src: &str) -> Result<FinalState, Diagnostic> {
        let prog = parse(src).unwrap();
        let syms = check(&prog).unwrap();
        run(&prog, &syms)
    }

    #[test]
    fn evaluates_loops_and_arrays() {
        let fin = run_src(
            "int a[5] = {3, 1, 4, 1, 5};\n\
             int s; int i;\n\
             for (i = 0; i < 5; i += 1) { s += a[i]; }",
        )
        .unwrap();
        assert_eq!(fin.scalars["s"], 14);
        assert_eq!(fin.scalars["i"], 5);
    }

    #[test]
    fn alu_semantics_match_xr32() {
        let fin = run_src(
            "int a = 2147483647 + 1;\n\
             int b = -5 >> 1;\n\
             int c = 1 << 33;\n\
             int d = 3 && 0;\n\
             int e = -7 * 3;\n\
             int f = !5;\n\
             int g = ~0;",
        )
        .unwrap();
        assert_eq!(fin.scalars["a"], i32::MIN);
        assert_eq!(fin.scalars["b"], -3);
        assert_eq!(fin.scalars["c"], 2); // shift amount mod 32
        assert_eq!(fin.scalars["d"], 0);
        assert_eq!(fin.scalars["e"], -21);
        assert_eq!(fin.scalars["f"], 0);
        assert_eq!(fin.scalars["g"], -1);
    }

    #[test]
    fn break_leaves_innermost_loop() {
        let fin = run_src(
            "int i; int j; int n;\n\
             for (i = 0; i < 3; i += 1) {\n\
               for (j = 0; j < 10; j += 1) {\n\
                 if (j == 2) { break; }\n\
                 n += 1;\n\
               }\n\
             }",
        )
        .unwrap();
        assert_eq!(fin.scalars["n"], 6);
    }

    #[test]
    fn rejects_oob_and_nontermination() {
        let err = run_src("int a[2]; int i = 5; a[i] = 1;").unwrap_err();
        assert!(err.message.contains("out of bounds"), "{err}");
        let err = run_src("int x; while (1) { x += 1; }").unwrap_err();
        assert!(err.message.contains("budget"), "{err}");
    }
}
