//! Hand-rolled lexer: bytes in, position-stamped tokens out.
//!
//! The lexer works on raw bytes so that *any* input — including
//! non-UTF-8 garbage fed by the robustness property tests — produces
//! either a token stream or a [`Diagnostic`], never a panic.

use crate::ast::{Diagnostic, Pos};
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// `int` keyword.
    Int,
    /// `if` keyword.
    If,
    /// `else` keyword.
    Else,
    /// `while` keyword.
    While,
    /// `for` keyword.
    For,
    /// `break` keyword.
    Break,
    /// Identifier.
    Ident(String),
    /// Integer literal (decimal or `0x` hex; hex wraps to `i32`).
    Num(i32),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tok::Int => "`int`",
            Tok::If => "`if`",
            Tok::Else => "`else`",
            Tok::While => "`while`",
            Tok::For => "`for`",
            Tok::Break => "`break`",
            Tok::Ident(name) => return write!(f, "identifier `{name}`"),
            Tok::Num(n) => return write!(f, "number `{n}`"),
            Tok::LParen => "`(`",
            Tok::RParen => "`)`",
            Tok::LBrace => "`{`",
            Tok::RBrace => "`}`",
            Tok::LBracket => "`[`",
            Tok::RBracket => "`]`",
            Tok::Semi => "`;`",
            Tok::Comma => "`,`",
            Tok::Assign => "`=`",
            Tok::PlusAssign => "`+=`",
            Tok::MinusAssign => "`-=`",
            Tok::Plus => "`+`",
            Tok::Minus => "`-`",
            Tok::Star => "`*`",
            Tok::Amp => "`&`",
            Tok::Pipe => "`|`",
            Tok::Caret => "`^`",
            Tok::Tilde => "`~`",
            Tok::Bang => "`!`",
            Tok::Shl => "`<<`",
            Tok::Shr => "`>>`",
            Tok::Lt => "`<`",
            Tok::Le => "`<=`",
            Tok::Gt => "`>`",
            Tok::Ge => "`>=`",
            Tok::EqEq => "`==`",
            Tok::Ne => "`!=`",
            Tok::AndAnd => "`&&`",
            Tok::OrOr => "`||`",
        };
        f.write_str(s)
    }
}

/// A token plus the position of its first byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Source position.
    pub pos: Pos,
}

/// Longest identifier the lexer accepts (guards diagnostics and memory
/// against adversarial megabyte-long names).
const MAX_IDENT: usize = 64;

struct Lexer<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.i).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.i += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_trivia(&mut self) -> Result<(), Diagnostic> {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let open = self.pos();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(Diagnostic::new(open, "unterminated block comment"))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn ident_or_keyword(&mut self) -> Result<Tok, Diagnostic> {
        let pos = self.pos();
        let start = self.i;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let text = &self.src[start..self.i];
        if text.len() > MAX_IDENT {
            return Err(Diagnostic::new(
                pos,
                format!("identifier longer than {MAX_IDENT} bytes"),
            ));
        }
        // Safe: the loop above only accepted ASCII bytes.
        let name = String::from_utf8_lossy(text).into_owned();
        Ok(match name.as_str() {
            "int" => Tok::Int,
            "if" => Tok::If,
            "else" => Tok::Else,
            "while" => Tok::While,
            "for" => Tok::For,
            "break" => Tok::Break,
            _ => Tok::Ident(name),
        })
    }

    fn number(&mut self) -> Result<Tok, Diagnostic> {
        let pos = self.pos();
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x' | b'X')) {
            self.bump();
            self.bump();
            let mut value: u32 = 0;
            let mut digits = 0usize;
            while let Some(b) = self.peek() {
                let d = match b {
                    b'0'..=b'9' => b - b'0',
                    b'a'..=b'f' => b - b'a' + 10,
                    b'A'..=b'F' => b - b'A' + 10,
                    b if b.is_ascii_alphanumeric() || b == b'_' => {
                        return Err(Diagnostic::new(pos, "malformed hex literal"));
                    }
                    _ => break,
                };
                digits += 1;
                if digits > 8 {
                    return Err(Diagnostic::new(pos, "hex literal wider than 32 bits"));
                }
                value = (value << 4) | u32::from(d);
                self.bump();
            }
            if digits == 0 {
                return Err(Diagnostic::new(pos, "hex literal has no digits"));
            }
            return Ok(Tok::Num(value as i32));
        }
        let mut value: i64 = 0;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    value = value * 10 + i64::from(b - b'0');
                    if value > i64::from(i32::MAX) {
                        return Err(Diagnostic::new(
                            pos,
                            "decimal literal exceeds 2147483647 (write INT_MIN as 0x80000000)",
                        ));
                    }
                    self.bump();
                }
                b if b.is_ascii_alphanumeric() || b == b'_' => {
                    return Err(Diagnostic::new(pos, "malformed number literal"));
                }
                _ => break,
            }
        }
        Ok(Tok::Num(value as i32))
    }

    fn punct(&mut self) -> Result<Tok, Diagnostic> {
        let pos = self.pos();
        let b = self.bump().expect("caller checked peek");
        let two = |lexer: &mut Lexer<'_>, next: u8, long: Tok, short: Tok| {
            if lexer.peek() == Some(next) {
                lexer.bump();
                long
            } else {
                short
            }
        };
        Ok(match b {
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b'{' => Tok::LBrace,
            b'}' => Tok::RBrace,
            b'[' => Tok::LBracket,
            b']' => Tok::RBracket,
            b';' => Tok::Semi,
            b',' => Tok::Comma,
            b'*' => Tok::Star,
            b'^' => Tok::Caret,
            b'~' => Tok::Tilde,
            b'+' => two(self, b'=', Tok::PlusAssign, Tok::Plus),
            b'-' => two(self, b'=', Tok::MinusAssign, Tok::Minus),
            b'=' => two(self, b'=', Tok::EqEq, Tok::Assign),
            b'!' => two(self, b'=', Tok::Ne, Tok::Bang),
            b'&' => two(self, b'&', Tok::AndAnd, Tok::Amp),
            b'|' => two(self, b'|', Tok::OrOr, Tok::Pipe),
            b'<' => match self.peek() {
                Some(b'<') => {
                    self.bump();
                    Tok::Shl
                }
                Some(b'=') => {
                    self.bump();
                    Tok::Le
                }
                _ => Tok::Lt,
            },
            b'>' => match self.peek() {
                Some(b'>') => {
                    self.bump();
                    Tok::Shr
                }
                Some(b'=') => {
                    self.bump();
                    Tok::Ge
                }
                _ => Tok::Gt,
            },
            _ => {
                return Err(Diagnostic::new(
                    pos,
                    if b.is_ascii_graphic() {
                        format!("unexpected character `{}`", b as char)
                    } else {
                        format!("unexpected byte 0x{b:02x}")
                    },
                ))
            }
        })
    }
}

/// Tokenizes `src`. Returns the first lexical error as a [`Diagnostic`]
/// with its line/column.
pub fn lex(src: &str) -> Result<Vec<Token>, Diagnostic> {
    let mut lexer = Lexer {
        src: src.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    loop {
        lexer.skip_trivia()?;
        let pos = lexer.pos();
        let Some(b) = lexer.peek() else {
            return Ok(out);
        };
        let tok = if b.is_ascii_alphabetic() || b == b'_' {
            lexer.ident_or_keyword()?
        } else if b.is_ascii_digit() {
            lexer.number()?
        } else {
            lexer.punct()?
        };
        out.push(Token { tok, pos });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_punctuation() {
        assert_eq!(
            toks("for (i = 0; i < 8; i += 1) { break; }"),
            vec![
                Tok::For,
                Tok::LParen,
                Tok::Ident("i".into()),
                Tok::Assign,
                Tok::Num(0),
                Tok::Semi,
                Tok::Ident("i".into()),
                Tok::Lt,
                Tok::Num(8),
                Tok::Semi,
                Tok::Ident("i".into()),
                Tok::PlusAssign,
                Tok::Num(1),
                Tok::RParen,
                Tok::LBrace,
                Tok::Break,
                Tok::Semi,
                Tok::RBrace,
            ]
        );
    }

    #[test]
    fn comments_and_positions() {
        let tokens = lex("a // x\n  /* b\nc */ b").unwrap();
        assert_eq!(tokens.len(), 2);
        assert_eq!(tokens[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(tokens[1].pos, Pos { line: 3, col: 6 });
    }

    #[test]
    fn hex_wraps_and_decimal_overflows() {
        assert_eq!(toks("0xFFFFFFFF"), vec![Tok::Num(-1)]);
        assert_eq!(toks("0x80000000"), vec![Tok::Num(i32::MIN)]);
        assert_eq!(toks("2147483647"), vec![Tok::Num(i32::MAX)]);
        let err = lex("2147483648").unwrap_err();
        assert!(err.message.contains("2147483647"), "{err}");
        assert!(lex("0x100000000").is_err());
        assert!(lex("12ab").is_err());
        assert!(lex("0x").is_err());
    }

    #[test]
    fn bad_bytes_are_diagnosed_not_panicked() {
        let err = lex("a @ b").unwrap_err();
        assert_eq!(err.pos, Pos { line: 1, col: 3 });
        assert!(lex("/* open").is_err());
        assert!(lex("\u{00e9}").is_err()); // non-ASCII
    }
}
