//! End-to-end equivalence of the three lowerings on the pipeline.
//!
//! Every test builds one IR structure, lowers it three ways, runs each on
//! the simulator, and checks that (a) all three produce identical
//! architectural results, (b) the ZOLC run is consistency-clean, and
//! (c) cycle counts order as ZOLC < HwLoop < Baseline whenever loops
//! dominate (the paper's central claim).

use zolc_core::{Zolc, ZolcConfig};
use zolc_ir::{lower_into, Cond, IndexSpec, LoopIr, LoopNode, Node, Target, Trips};
use zolc_isa::{reg, Asm, Instr, Reg};
use zolc_sim::{run_program, Finished, NullEngine};

/// Lowers and runs `ir` (with optional setup instructions and a result
/// snapshot of `result_regs`).
fn run(ir: &LoopIr, setup: &[Instr], target: &Target) -> (Finished, Option<Zolc>, Vec<String>) {
    let mut asm = Asm::new();
    asm.emit_all(setup.iter().copied());
    let info = lower_into(&mut asm, ir, target).expect("lowering succeeds");
    asm.emit(Instr::Halt);
    let program = asm.finish().expect("assembles");
    match target {
        Target::Zolc(cfg) => {
            let mut z = Zolc::new(*cfg);
            let fin = run_program(&program, &mut z, 10_000_000).expect("runs");
            (fin, Some(z), info.notes)
        }
        _ => {
            let fin = run_program(&program, &mut NullEngine, 10_000_000).expect("runs");
            (fin, None, info.notes)
        }
    }
}

/// Runs all three lowerings and asserts identical register outcomes.
fn check_equivalence(
    ir: &LoopIr,
    setup: &[Instr],
    result_regs: &[Reg],
    zolc_cfg: ZolcConfig,
) -> (u64, u64, u64) {
    let (base, _, _) = run(ir, setup, &Target::Baseline);
    let (hw, _, _) = run(ir, setup, &Target::HwLoop);
    let (zl, z, _) = run(ir, setup, &Target::Zolc(zolc_cfg));
    let z = z.unwrap();
    z.assert_consistent();
    for &r in result_regs {
        let b = base.cpu.regs().read(r);
        assert_eq!(hw.cpu.regs().read(r), b, "hwloop differs in {r}");
        assert_eq!(zl.cpu.regs().read(r), b, "zolc differs in {r}");
    }
    (base.stats.cycles, hw.stats.cycles, zl.stats.cycles)
}

/// for i in 0..n { acc += i } with the index in a register.
fn indexed_sum(n: u32) -> LoopIr {
    LoopIr {
        name: "sum".into(),
        nodes: vec![Node::Loop(LoopNode {
            trips: Trips::Const(n),
            index: Some(IndexSpec {
                reg: reg(20),
                init: 0,
                step: 1,
            }),
            counter: reg(11),
            body: vec![Node::code([
                Instr::Add {
                    rd: reg(2),
                    rs: reg(2),
                    rt: reg(20),
                },
                Instr::Add {
                    rd: reg(3),
                    rs: reg(3),
                    rt: reg(2),
                },
            ])],
        })],
    }
}

#[test]
fn single_indexed_loop_equivalent_and_ordered() {
    let (b, h, z) = check_equivalence(&indexed_sum(50), &[], &[reg(2), reg(3)], ZolcConfig::lite());
    assert!(z < h, "zolc {z} !< hwloop {h}");
    assert!(h < b, "hwloop {h} !< baseline {b}");
}

#[test]
fn micro_config_handles_single_loop() {
    let (b, _h, z) = check_equivalence(
        &indexed_sum(50),
        &[],
        &[reg(2), reg(3)],
        ZolcConfig::micro(),
    );
    assert!(z < b);
}

#[test]
fn full_config_handles_single_loop() {
    check_equivalence(&indexed_sum(20), &[], &[reg(2), reg(3)], ZolcConfig::full());
}

/// Perfect 2-nest with both indices live: acc += i*8 + j.
#[test]
fn perfect_nest_equivalent() {
    let ir = LoopIr {
        name: "nest2".into(),
        nodes: vec![Node::Loop(LoopNode {
            trips: Trips::Const(6),
            index: Some(IndexSpec {
                reg: reg(21),
                init: 0,
                step: 8,
            }),
            counter: reg(11),
            body: vec![Node::Loop(LoopNode {
                trips: Trips::Const(8),
                index: Some(IndexSpec {
                    reg: reg(20),
                    init: 0,
                    step: 1,
                }),
                counter: reg(12),
                body: vec![Node::code([
                    Instr::Add {
                        rd: reg(4),
                        rs: reg(21),
                        rt: reg(20),
                    },
                    Instr::Add {
                        rd: reg(2),
                        rs: reg(2),
                        rt: reg(4),
                    },
                ])],
            })],
        })],
    };
    let (b, h, z) = check_equivalence(&ir, &[], &[reg(2)], ZolcConfig::lite());
    assert!(z < h && h < b, "cycles not ordered: {z} {h} {b}");
}

/// Imperfect 3-deep structure: outer loop containing code, a nest, more
/// code, and a second inner loop (a loop *sequence* inside a loop).
#[test]
fn imperfect_structure_equivalent() {
    let inner_a = Node::Loop(LoopNode {
        trips: Trips::Const(3),
        index: Some(IndexSpec {
            reg: reg(20),
            init: 0,
            step: 2,
        }),
        counter: reg(12),
        body: vec![Node::code([Instr::Add {
            rd: reg(2),
            rs: reg(2),
            rt: reg(20),
        }])],
    });
    let inner_b = Node::Loop(LoopNode {
        trips: Trips::Const(4),
        index: None,
        counter: reg(13),
        body: vec![Node::code([
            Instr::Addi {
                rt: reg(3),
                rs: reg(3),
                imm: 5,
            },
            Instr::Xor {
                rd: reg(4),
                rs: reg(4),
                rt: reg(3),
            },
        ])],
    });
    let ir = LoopIr {
        name: "imperfect".into(),
        nodes: vec![Node::Loop(LoopNode {
            trips: Trips::Const(5),
            index: Some(IndexSpec {
                reg: reg(22),
                init: 100,
                step: -3,
            }),
            counter: reg(11),
            body: vec![
                Node::code([Instr::Add {
                    rd: reg(5),
                    rs: reg(5),
                    rt: reg(22),
                }]),
                inner_a,
                Node::code([Instr::Addi {
                    rt: reg(6),
                    rs: reg(6),
                    imm: 1,
                }]),
                inner_b,
            ],
        })],
    };
    let (b, h, z) = check_equivalence(
        &ir,
        &[],
        &[reg(2), reg(3), reg(4), reg(5), reg(6)],
        ZolcConfig::lite(),
    );
    assert!(z < h && h < b, "cycles not ordered: {z} {h} {b}");
}

/// Loop sequence at top level (two nests one after the other).
#[test]
fn top_level_sequence_equivalent() {
    let mk = |ctr: u8, idx: u8, acc: u8, trips: u32| {
        Node::Loop(LoopNode {
            trips: Trips::Const(trips),
            index: Some(IndexSpec {
                reg: reg(idx),
                init: 1,
                step: 1,
            }),
            counter: reg(ctr),
            body: vec![Node::code([Instr::Add {
                rd: reg(acc),
                rs: reg(acc),
                rt: reg(idx),
            }])],
        })
    };
    let ir = LoopIr {
        name: "seq".into(),
        nodes: vec![
            mk(11, 20, 2, 7),
            Node::code([Instr::Addi {
                rt: reg(4),
                rs: reg(2),
                imm: 3,
            }]),
            mk(12, 21, 3, 9),
        ],
    };
    check_equivalence(&ir, &[], &[reg(2), reg(3), reg(4)], ZolcConfig::lite());
}

/// Data-dependent inner limit (triangular nest, bubble-sort shaped):
/// inner trips = r9, recomputed each outer iteration as (n - 1 - i).
#[test]
fn triangular_nest_equivalent() {
    let n = 9i16;
    let ir = LoopIr {
        name: "tri".into(),
        nodes: vec![Node::Loop(LoopNode {
            trips: Trips::Const((n - 1) as u32),
            index: Some(IndexSpec {
                reg: reg(21),
                init: 0,
                step: 1,
            }),
            counter: reg(11),
            body: vec![
                // r9 = n - 1 - i
                Node::code([
                    Instr::Addi {
                        rt: reg(9),
                        rs: Reg::ZERO,
                        imm: n - 1,
                    },
                    Instr::Sub {
                        rd: reg(9),
                        rs: reg(9),
                        rt: reg(21),
                    },
                ]),
                Node::Loop(LoopNode {
                    trips: Trips::Reg(reg(9)),
                    index: Some(IndexSpec {
                        reg: reg(20),
                        init: 0,
                        step: 1,
                    }),
                    counter: reg(12),
                    body: vec![Node::code([
                        Instr::Add {
                            rd: reg(2),
                            rs: reg(2),
                            rt: reg(20),
                        },
                        Instr::Addi {
                            rt: reg(3),
                            rs: reg(3),
                            imm: 1,
                        },
                    ])],
                }),
            ],
        })],
    };
    let (b, h, z) = check_equivalence(&ir, &[], &[reg(2), reg(3)], ZolcConfig::lite());
    // r3 counts total inner iterations: sum_{i=0..n-1} (n-1-i) = 28 for n=9
    assert!(z < h && h < b, "cycles not ordered: {z} {h} {b}");
}

/// If/else inside a loop body (taken path varies by iteration parity).
#[test]
fn conditional_body_equivalent() {
    let ir = LoopIr {
        name: "cond".into(),
        nodes: vec![Node::Loop(LoopNode {
            trips: Trips::Const(12),
            index: Some(IndexSpec {
                reg: reg(20),
                init: 0,
                step: 1,
            }),
            counter: reg(11),
            body: vec![
                Node::code([Instr::Andi {
                    rt: reg(4),
                    rs: reg(20),
                    imm: 1,
                }]),
                Node::If {
                    cond: Cond::Ne(reg(4), Reg::ZERO),
                    then: vec![Node::code([Instr::Add {
                        rd: reg(2),
                        rs: reg(2),
                        rt: reg(20),
                    }])],
                    els: vec![Node::code([Instr::Sub {
                        rd: reg(3),
                        rs: reg(3),
                        rt: reg(20),
                    }])],
                },
            ],
        })],
    };
    check_equivalence(&ir, &[], &[reg(2), reg(3)], ZolcConfig::lite());
}

/// Early exit via break_if: compare ZOLCfull (exit record) and ZOLClite
/// (software stub) against the software lowerings.
#[test]
fn early_exit_equivalent_on_full_and_lite() {
    // search: first index where acc crosses 40 breaks the loop
    let ir = LoopIr {
        name: "brk".into(),
        nodes: vec![
            Node::Loop(LoopNode {
                trips: Trips::Const(30),
                index: Some(IndexSpec {
                    reg: reg(20),
                    init: 0,
                    step: 1,
                }),
                counter: reg(11),
                body: vec![
                    Node::code([
                        Instr::Add {
                            rd: reg(2),
                            rs: reg(2),
                            rt: reg(20),
                        },
                        Instr::Slti {
                            rt: reg(4),
                            rs: reg(2),
                            imm: 40,
                        },
                    ]),
                    Node::BreakIf {
                        cond: Cond::Eq(reg(4), Reg::ZERO),
                        levels: 1,
                    },
                    Node::code([Instr::Addi {
                        rt: reg(3),
                        rs: reg(3),
                        imm: 1,
                    }]),
                ],
            }),
            // post-loop code proves control lands correctly
            Node::code([Instr::Addi {
                rt: reg(5),
                rs: reg(3),
                imm: 100,
            }]),
        ],
    };
    check_equivalence(&ir, &[], &[reg(2), reg(3), reg(5)], ZolcConfig::full());
    check_equivalence(&ir, &[], &[reg(2), reg(3), reg(5)], ZolcConfig::lite());
}

/// Break out of two levels at once.
#[test]
fn multi_level_break_equivalent() {
    let ir = LoopIr {
        name: "brk2".into(),
        nodes: vec![
            Node::Loop(LoopNode {
                trips: Trips::Const(6),
                index: Some(IndexSpec {
                    reg: reg(21),
                    init: 0,
                    step: 1,
                }),
                counter: reg(11),
                body: vec![Node::Loop(LoopNode {
                    trips: Trips::Const(6),
                    index: Some(IndexSpec {
                        reg: reg(20),
                        init: 0,
                        step: 1,
                    }),
                    counter: reg(12),
                    body: vec![
                        Node::code([
                            Instr::Add {
                                rd: reg(2),
                                rs: reg(2),
                                rt: reg(20),
                            },
                            Instr::Add {
                                rd: reg(2),
                                rs: reg(2),
                                rt: reg(21),
                            },
                            Instr::Slti {
                                rt: reg(4),
                                rs: reg(2),
                                imm: 25,
                            },
                        ]),
                        Node::BreakIf {
                            cond: Cond::Eq(reg(4), Reg::ZERO),
                            levels: 2,
                        },
                    ],
                })],
            }),
            Node::code([Instr::Addi {
                rt: reg(6),
                rs: reg(2),
                imm: 1,
            }]),
        ],
    };
    check_equivalence(&ir, &[], &[reg(2), reg(6)], ZolcConfig::full());
    check_equivalence(&ir, &[], &[reg(2), reg(6)], ZolcConfig::lite());
}

/// Memory-walking loop: the ZOLC index register is a pointer.
#[test]
fn pointer_walk_equivalent() {
    let setup = [
        // write 10 words: mem[0x40000 + 4k] = 3k
        Instr::Lui { rt: reg(8), imm: 4 }, // r8 = 0x40000
    ];
    // first a store loop, then a load-accumulate loop
    let store = Node::Loop(LoopNode {
        trips: Trips::Const(10),
        index: Some(IndexSpec {
            reg: reg(20),
            init: 0x40000,
            step: 4,
        }),
        counter: reg(11),
        body: vec![Node::code([
            Instr::Addi {
                rt: reg(5),
                rs: reg(5),
                imm: 3,
            },
            Instr::Sw {
                rt: reg(5),
                rs: reg(20),
                off: 0,
            },
        ])],
    });
    let load = Node::Loop(LoopNode {
        trips: Trips::Const(10),
        index: Some(IndexSpec {
            reg: reg(21),
            init: 0x40000,
            step: 4,
        }),
        counter: reg(12),
        body: vec![Node::code([
            Instr::Lw {
                rt: reg(6),
                rs: reg(21),
                off: 0,
            },
            Instr::Add {
                rd: reg(2),
                rs: reg(2),
                rt: reg(6),
            },
        ])],
    });
    let ir = LoopIr {
        name: "ptr".into(),
        nodes: vec![store, load],
    };
    let (b, h, z) = check_equivalence(&ir, &setup, &[reg(2)], ZolcConfig::lite());
    assert!(z < h && h < b);
}

/// The ZOLC engine reports zero redirect overhead: cycles equal the pure
/// body work plus constant setup.
#[test]
fn zolc_redirect_count_matches_back_edges() {
    let ir = indexed_sum(40);
    let (fin, z, _) = run(&ir, &[], &Target::Zolc(ZolcConfig::lite()));
    z.unwrap().assert_consistent();
    // 39 back edges (the last iteration falls through)
    assert_eq!(fin.stats.zolc_redirects, 39);
    // the only flushes are the two context-synchronizing zctl ops of the
    // initialization sequence — none from the loop itself
    assert_eq!(fin.stats.flushes, 2, "only the zctl sync flushes");
    assert_eq!(fin.stats.zctl_retired, 2);
    // 40 index writes: the entry initialization + 39 iterations
    assert_eq!(fin.stats.zolc_index_writes, 40);
}
