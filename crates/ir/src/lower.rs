//! Lowering the structured IR to the three machine-code forms.
//!
//! * [`Target::Baseline`] — `XRdefault`: a software down-counter per loop
//!   (`addi counter, -1; bne counter, r0, top`) plus software index
//!   maintenance; every taken back edge pays the 2-cycle branch penalty.
//! * [`Target::HwLoop`] — `XRhrdwil`: the branch-decrement `dbnz` fuses
//!   the decrement and the compare-and-branch into one instruction whose
//!   dedicated zero-detect resolves in ID (one overhead instruction plus
//!   a single taken bubble per iteration).
//! * [`Target::Zolc`] — bodies only: no loop-control instructions at all.
//!   The lowering plans the task graph (one task per loop, chained ends
//!   for shared last instructions), emits the initialization sequence, and
//!   schedules in-loop `zwr` limit updates for data-dependent bounds with
//!   the required ≥3-instruction lead. `break_if` uses exit records on
//!   ZOLCfull and a software fixup stub on configurations without records.
//!
//! All three lowerings share the body code verbatim, so measured cycle
//! differences are attributable to loop control alone — the property the
//! paper's Fig. 2 comparison relies on.

use crate::ir::{Cond, IndexSpec, LoopIr, LoopNode, Node, Trips};
use std::fmt;
use zolc_core::{
    ExitSpec, ImageError, LimitSrc, LoopSpec, TaskSpec, ZolcConfig, ZolcImage, TASK_NONE,
};
use zolc_isa::{loop_field, Asm, AsmError, Instr, Label, Reg, ZolcCtl, ZolcRegion};

/// The processor configuration code is generated for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// `XRdefault`: software loops.
    Baseline,
    /// `XRhrdwil`: branch-decrement loops.
    HwLoop,
    /// ZOLC of the given hardware configuration.
    Zolc(ZolcConfig),
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Baseline => f.write_str("XRdefault"),
            Target::HwLoop => f.write_str("XRhrdwil"),
            Target::Zolc(c) => write!(f, "{}", c.variant()),
        }
    }
}

/// What the lowering produced beyond the emitted code.
#[derive(Debug, Clone, Default)]
pub struct LoweredInfo {
    /// The resolved table image (ZOLC targets with at least one loop).
    pub image: Option<ZolcImage>,
    /// Instructions in the emitted initialization sequence.
    pub init_instructions: usize,
    /// Non-fatal remarks (e.g. exit-record exhaustion fallbacks).
    pub notes: Vec<String>,
}

/// Errors raised by lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// `break_if` outside any loop, or deeper than the nesting.
    BreakTooDeep {
        /// Requested levels.
        levels: u8,
        /// Available nesting depth at that point.
        depth: usize,
    },
    /// A loop appears inside an `if` arm (conditionally-executed loops are
    /// not expressible in the ZOLC task graph).
    LoopInsideIf,
    /// Body code writes a register owned by loop control.
    RegisterConflict(String),
    /// An index step outside the 16-bit immediate range.
    StepOutOfRange {
        /// The offending step.
        step: i32,
    },
    /// The loop structure does not fit the ZOLC configuration.
    Image(ImageError),
    /// Assembler-level failure (label/branch range).
    Asm(String),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::BreakTooDeep { levels, depth } => {
                write!(f, "break_if({levels}) with only {depth} enclosing loops")
            }
            LowerError::LoopInsideIf => {
                write!(
                    f,
                    "loops inside if arms are not supported by the task graph"
                )
            }
            LowerError::RegisterConflict(msg) => write!(f, "register conflict: {msg}"),
            LowerError::StepOutOfRange { step } => {
                write!(f, "index step {step} exceeds the 16-bit immediate range")
            }
            LowerError::Image(e) => write!(f, "structure does not fit configuration: {e}"),
            LowerError::Asm(e) => write!(f, "assembly error: {e}"),
        }
    }
}

impl std::error::Error for LowerError {}

impl From<ImageError> for LowerError {
    fn from(e: ImageError) -> Self {
        LowerError::Image(e)
    }
}

impl From<AsmError> for LowerError {
    fn from(e: AsmError) -> Self {
        LowerError::Asm(e.to_string())
    }
}

/// Lowers `ir` into `asm` for `target`.
///
/// The caller typically emits data/setup beforehand and a `halt`
/// afterwards. For ZOLC targets the emitted code *self-initializes* the
/// controller: running it on a fresh [`zolc_core::Zolc`] of the matching
/// configuration needs no external table loading.
///
/// # Errors
///
/// Returns a [`LowerError`] when the structure is malformed (breaks
/// deeper than the nesting, loops inside `if` arms, body code writing
/// loop-control registers) or does not fit the ZOLC configuration.
pub fn lower_into(asm: &mut Asm, ir: &LoopIr, target: &Target) -> Result<LoweredInfo, LowerError> {
    check_structure(&ir.nodes)?;
    match target {
        Target::Baseline => {
            check_register_conflicts(&ir.nodes, false)?;
            let mut sw = SwLower {
                asm,
                hw: false,
                exits: Vec::new(),
            };
            sw.nodes(&ir.nodes)?;
            Ok(LoweredInfo::default())
        }
        Target::HwLoop => {
            check_register_conflicts(&ir.nodes, false)?;
            let mut sw = SwLower {
                asm,
                hw: true,
                exits: Vec::new(),
            };
            sw.nodes(&ir.nodes)?;
            Ok(LoweredInfo::default())
        }
        Target::Zolc(config) => {
            check_register_conflicts(&ir.nodes, true)?;
            lower_zolc(asm, ir, *config)
        }
    }
}

/// Rejects loops inside `if` arms and out-of-range steps.
fn check_structure(nodes: &[Node]) -> Result<(), LowerError> {
    fn walk(nodes: &[Node], in_if: bool) -> Result<(), LowerError> {
        for n in nodes {
            match n {
                Node::Loop(l) => {
                    if in_if {
                        return Err(LowerError::LoopInsideIf);
                    }
                    if let Some(ix) = l.index {
                        if i16::try_from(ix.step).is_err() {
                            return Err(LowerError::StepOutOfRange { step: ix.step });
                        }
                    }
                    walk(&l.body, false)?;
                }
                Node::If { then, els, .. } => {
                    walk(then, true)?;
                    walk(els, true)?;
                }
                // A `while` subtree is lowered entirely in software (its
                // counted loops never enter the task graph), so the
                // conditional-loop restriction resets inside it.
                Node::While { body, .. } => walk(body, false)?,
                _ => {}
            }
        }
        Ok(())
    }
    walk(nodes, false)
}

/// Rejects body code writing loop-control registers. Under ZOLC the index
/// registers belong to the index calculation unit; under the software
/// lowerings the counter and index registers belong to the loop latch.
fn check_register_conflicts(nodes: &[Node], zolc: bool) -> Result<(), LowerError> {
    fn check_instrs(instrs: &[Instr], protected: &[Reg]) -> Result<(), LowerError> {
        for i in instrs {
            if let Some(d) = i.dst() {
                if protected.contains(&d) {
                    return Err(LowerError::RegisterConflict(format!(
                        "body instruction `{i}` writes loop-control register {d}"
                    )));
                }
            }
        }
        Ok(())
    }
    // `sw` = loops here lower as software loops even on ZOLC targets
    // (inside a `while` subtree), so their counters are live.
    fn walk(
        nodes: &[Node],
        protected: &mut Vec<Reg>,
        zolc: bool,
        sw: bool,
    ) -> Result<(), LowerError> {
        for n in nodes {
            match n {
                Node::Code(instrs) => check_instrs(instrs, protected)?,
                Node::Loop(l) => {
                    let mut added = 0;
                    if let Some(ix) = l.index {
                        protected.push(ix.reg);
                        added += 1;
                    }
                    if !zolc || sw {
                        protected.push(l.counter);
                        added += 1;
                    }
                    walk(&l.body, protected, zolc, sw)?;
                    for _ in 0..added {
                        protected.pop();
                    }
                }
                Node::If { then, els, .. } => {
                    walk(then, protected, zolc, sw)?;
                    walk(els, protected, zolc, sw)?;
                }
                Node::BreakIf { .. } => {}
                Node::While { header, body, .. } => {
                    check_instrs(header, protected)?;
                    walk(body, protected, zolc, true)?;
                }
            }
        }
        Ok(())
    }
    walk(nodes, &mut Vec::new(), zolc, false)
}

// ====================== software lowerings ==============================

struct SwLower<'a> {
    asm: &'a mut Asm,
    hw: bool,
    /// Exit labels of enclosing loops, innermost last.
    exits: Vec<Label>,
}

impl SwLower<'_> {
    fn nodes(&mut self, nodes: &[Node]) -> Result<(), LowerError> {
        for n in nodes {
            match n {
                Node::Code(instrs) => {
                    self.asm.emit_all(instrs.iter().copied());
                }
                Node::Loop(l) => self.lower_loop(l)?,
                Node::If { cond, then, els } => self.lower_if(*cond, then, els)?,
                Node::BreakIf { cond, levels } => {
                    let idx = self
                        .exits
                        .len()
                        .checked_sub(usize::from(*levels))
                        .filter(|_| *levels >= 1)
                        .ok_or(LowerError::BreakTooDeep {
                            levels: *levels,
                            depth: self.exits.len(),
                        })?;
                    let target = self.exits[idx];
                    self.asm.branch(cond.branch_if(), target);
                }
                Node::While { header, cond, body } => self.lower_while(header, *cond, body)?,
            }
        }
        Ok(())
    }

    /// A data-dependent loop: header, conditional exit, body, back-jump.
    /// Identical on every target; counts as one breakable level.
    fn lower_while(
        &mut self,
        header: &[Instr],
        cond: Cond,
        body: &[Node],
    ) -> Result<(), LowerError> {
        let top = self.asm.label_here();
        self.asm.emit_all(header.iter().copied());
        let exit = self.asm.new_label();
        self.asm.branch(cond.branch_unless(), exit);
        self.exits.push(exit);
        self.nodes(body)?;
        self.exits.pop();
        self.asm.jump(top);
        self.asm.bind(exit)?;
        Ok(())
    }

    fn lower_loop(&mut self, l: &LoopNode) -> Result<(), LowerError> {
        // Preheader: index init and trip counter load (per activation).
        if let Some(ix) = l.index {
            self.asm.li(ix.reg, ix.init);
        }
        match l.trips {
            Trips::Const(n) => {
                self.asm.li(l.counter, n as i32);
            }
            Trips::Reg(r) => {
                self.asm.emit(Instr::Add {
                    rd: l.counter,
                    rs: r,
                    rt: Reg::ZERO,
                });
            }
        }
        let top = self.asm.label_here();
        let exit = self.asm.new_label();
        self.exits.push(exit);
        self.nodes(&l.body)?;
        self.exits.pop();
        // Latch: index step, then count down.
        if let Some(ix) = l.index {
            if ix.step != 0 {
                self.asm.emit(Instr::Addi {
                    rt: ix.reg,
                    rs: ix.reg,
                    imm: ix.step as i16,
                });
            }
        }
        if self.hw {
            self.asm.branch(
                Instr::Dbnz {
                    rs: l.counter,
                    off: 0,
                },
                top,
            );
        } else {
            self.asm.emit(Instr::Addi {
                rt: l.counter,
                rs: l.counter,
                imm: -1,
            });
            self.asm.branch(
                Instr::Bne {
                    rs: l.counter,
                    rt: Reg::ZERO,
                    off: 0,
                },
                top,
            );
        }
        self.asm.bind(exit)?;
        Ok(())
    }

    fn lower_if(&mut self, cond: Cond, then: &[Node], els: &[Node]) -> Result<(), LowerError> {
        let else_l = self.asm.new_label();
        self.asm.branch(cond.branch_unless(), else_l);
        self.nodes(then)?;
        if els.is_empty() {
            self.asm.bind(else_l)?;
        } else {
            let join = self.asm.new_label();
            self.asm.jump(join);
            self.asm.bind(else_l)?;
            self.nodes(els)?;
            self.asm.bind(join)?;
        }
        Ok(())
    }
}

// ========================= ZOLC lowering ================================

/// Per-loop plan computed before emission.
#[derive(Debug, Clone)]
struct PlanLoop {
    trips: Trips,
    index: Option<IndexSpec>,
    /// Task current after this loop iterates (first task end inside its
    /// body).
    next_iter: u8,
    /// Task current after this loop completes.
    next_fallthru: u8,
}

/// Recursively assigns pre-order loop ids and successor tasks.
fn plan_loops(nodes: &[Node]) -> Vec<PlanLoop> {
    // Pass 1: pre-order collection with children lists.
    struct Rec {
        trips: Trips,
        index: Option<IndexSpec>,
        children: Vec<u8>,
        parent: Option<u8>,
    }
    fn collect(nodes: &[Node], parent: Option<u8>, out: &mut Vec<Rec>) -> Vec<u8> {
        let mut level = Vec::new();
        for n in nodes {
            if let Node::Loop(l) = n {
                let id = out.len() as u8;
                out.push(Rec {
                    trips: l.trips,
                    index: l.index,
                    children: Vec::new(),
                    parent,
                });
                let kids = collect(&l.body, Some(id), out);
                out[usize::from(id)].children = kids;
                level.push(id);
            }
        }
        if let Some(p) = parent {
            out[usize::from(p)].children = level.clone();
        }
        level
    }
    let mut recs = Vec::new();
    let top = collect(nodes, None, &mut recs);

    // first task end reached when entering loop `id`'s body
    fn first_end(recs: &[Rec], id: u8) -> u8 {
        match recs[usize::from(id)].children.first() {
            Some(&c) => first_end(recs, c),
            None => id,
        }
    }

    let mut plans: Vec<PlanLoop> = recs
        .iter()
        .map(|r| PlanLoop {
            trips: r.trips,
            index: r.index,
            next_iter: 0,
            next_fallthru: TASK_NONE,
        })
        .collect();
    for id in 0..recs.len() as u8 {
        plans[usize::from(id)].next_iter = first_end(&recs, id);
        // fall-through: next sibling loop's first end, else parent's task
        let siblings: &[u8] = match recs[usize::from(id)].parent {
            Some(p) => &recs[usize::from(p)].children,
            None => &top,
        };
        let pos = siblings.iter().position(|&s| s == id).expect("sibling");
        plans[usize::from(id)].next_fallthru = match siblings.get(pos + 1) {
            Some(&next) => first_end(&recs, next),
            None => recs[usize::from(id)].parent.unwrap_or(TASK_NONE),
        };
    }
    plans
}

/// A conservative lower bound of the instructions a body will emit.
fn min_len(nodes: &[Node]) -> u32 {
    nodes
        .iter()
        .map(|n| match n {
            Node::Code(instrs) => instrs.len() as u32,
            Node::Loop(l) => min_len(&l.body).max(1),
            Node::If { .. } => 1,
            Node::BreakIf { .. } => 1,
            // header + exit branch + body + back-jump
            Node::While { header, body, .. } => header.len() as u32 + 2 + min_len(body),
        })
        .sum()
}

struct LoopLabels {
    start: Label,
    end: Label,
    after: Label,
}

struct StubInfo {
    label: Label,
    /// Loops whose counters must clear.
    clear: Vec<u8>,
    /// Task to re-target (TASK_NONE allowed).
    task: u8,
    /// Where execution resumes.
    resume: Label,
}

/// How one `break_if` will be realized (decided before emission so exit
/// records can be part of the up-front initialization sequence).
enum PlannedBreak {
    /// A ZOLCfull exit record handles the bookkeeping; the branch jumps
    /// straight to the resume point.
    Record {
        /// Label bound at the exit branch instruction.
        branch: Label,
        /// The branch target (code after the broken loop).
        resume: Label,
    },
    /// Software fixup: the branch jumps to a stub that clears counters
    /// and re-targets the current task.
    Stub(StubInfo),
}

/// Walks the IR in emission order and plans every `break_if`, allocating
/// exit-record slots (ZOLCfull) or fixup stubs. Returns the plans plus the
/// exit records to include in the initialization image.
type BreakPlans = (Vec<PlannedBreak>, Vec<ExitSpec>, Vec<String>);

fn plan_breaks(
    asm: &mut Asm,
    nodes: &[Node],
    plans: &[PlanLoop],
    labels: &[LoopLabels],
    config: &ZolcConfig,
) -> Result<BreakPlans, LowerError> {
    struct Walker<'a> {
        asm: &'a mut Asm,
        plans: &'a [PlanLoop],
        labels: &'a [LoopLabels],
        config: &'a ZolcConfig,
        cursor: usize,
        stack: Vec<u8>,
        out: Vec<PlannedBreak>,
        exits: Vec<ExitSpec>,
        slots_used: Vec<u8>,
        notes: Vec<String>,
    }
    impl Walker<'_> {
        fn walk(&mut self, nodes: &[Node]) -> Result<(), LowerError> {
            for n in nodes {
                match n {
                    Node::Code(_) => {}
                    // `while` subtrees are software-lowered wholesale:
                    // their loops/breaks never touch the ZOLC plans.
                    Node::While { .. } => {}
                    Node::Loop(l) => {
                        let id = self.cursor as u8;
                        self.cursor += 1;
                        self.stack.push(id);
                        self.walk(&l.body)?;
                        self.stack.pop();
                    }
                    Node::If { then, els, .. } => {
                        self.walk(then)?;
                        self.walk(els)?;
                    }
                    Node::BreakIf { levels, .. } => {
                        let idx = self
                            .stack
                            .len()
                            .checked_sub(usize::from(*levels))
                            .filter(|_| *levels >= 1)
                            .ok_or(LowerError::BreakTooDeep {
                                levels: *levels,
                                depth: self.stack.len(),
                            })?;
                        let broken = self.stack[idx];
                        let exited: Vec<u8> = self.stack[idx..].to_vec();
                        let innermost = *self.stack.last().expect("inside a loop");
                        let resume = self.labels[usize::from(broken)].after;
                        let target_task = self.plans[usize::from(broken)].next_fallthru;
                        let slot = self.slots_used[usize::from(innermost)];
                        if self.config.exit_slots() > usize::from(slot) {
                            let branch = self.asm.new_label();
                            self.slots_used[usize::from(innermost)] += 1;
                            let clear_mask = exited.iter().fold(0u8, |m, k| m | (1 << k));
                            self.exits.push(ExitSpec {
                                loop_id: innermost,
                                slot,
                                branch: branch.into(),
                                target_task,
                                clear_mask,
                                target: Some(resume.into()),
                            });
                            self.out.push(PlannedBreak::Record { branch, resume });
                        } else {
                            if self.config.exit_slots() > 0 {
                                self.notes.push(format!(
                                    "loop {innermost}: exit records exhausted, using software fixup"
                                ));
                            } else {
                                self.notes.push(format!(
                                    "loop {innermost}: no exit records in {}, using software fixup",
                                    self.config
                                ));
                            }
                            let label = self.asm.new_label();
                            self.out.push(PlannedBreak::Stub(StubInfo {
                                label,
                                clear: exited,
                                task: target_task,
                                resume,
                            }));
                        }
                    }
                }
            }
            Ok(())
        }
    }
    let mut w = Walker {
        asm,
        plans,
        labels,
        config,
        cursor: 0,
        stack: Vec::new(),
        out: Vec::new(),
        exits: Vec::new(),
        slots_used: vec![0; config.loops().max(1)],
        notes: Vec::new(),
    };
    w.walk(nodes)?;
    Ok((w.out, w.exits, w.notes))
}

struct ZolcLower<'a> {
    asm: &'a mut Asm,
    config: ZolcConfig,
    plans: Vec<PlanLoop>,
    labels: Vec<LoopLabels>,
    /// Pre-order cursor matching `plans`.
    cursor: usize,
    /// Enclosing loop ids, innermost last.
    stack: Vec<u8>,
    /// Pre-planned breaks, consumed in emission order.
    breaks: Vec<PlannedBreak>,
    break_cursor: usize,
    stubs: Vec<StubInfo>,
    /// Address right after `zctl.on` (loop starts must not collide).
    after_activate: Option<u32>,
    notes: Vec<String>,
}

fn lower_zolc(asm: &mut Asm, ir: &LoopIr, config: ZolcConfig) -> Result<LoweredInfo, LowerError> {
    let plans = plan_loops(&ir.nodes);
    if plans.is_empty() {
        // No loops: plain code, no controller involvement.
        let mut sw = SwLower {
            asm,
            hw: false,
            exits: Vec::new(),
        };
        sw.nodes(&ir.nodes)?;
        return Ok(LoweredInfo::default());
    }

    let labels: Vec<LoopLabels> = plans
        .iter()
        .map(|_| LoopLabels {
            start: asm.new_label(),
            end: asm.new_label(),
            after: asm.new_label(),
        })
        .collect();

    // Build the (label-addressed) image and emit the init sequence before
    // the first loop; top-level code preceding it runs in inactive mode.
    let initial_task = {
        // first top-level loop's first inner end = plan id of the first
        // pre-order loop reached by descending = simply the first loop's
        // next_iter.
        plans[0].next_iter
    };
    let image = ZolcImage {
        loops: plans
            .iter()
            .enumerate()
            .map(|(k, p)| LoopSpec {
                init: p.index.map_or(0, |ix| ix.init),
                step: p.index.map_or(0, |ix| ix.step),
                limit: match p.trips {
                    Trips::Const(n) => LimitSrc::Const(n),
                    // data-dependent: written by an in-loop zwr at the
                    // preheader; the init-time value is a placeholder
                    Trips::Reg(r) => LimitSrc::Reg(r),
                },
                index_reg: p.index.map(|ix| ix.reg),
                start: labels[k].start.into(),
                end: labels[k].end.into(),
            })
            .collect(),
        // uZOLC has no task LUT: its single loop is implicit. Multi-loop
        // structures on uZOLC are rejected by the image validation below
        // (loops capacity 1).
        tasks: if config.tasks() == 0 {
            Vec::new()
        } else {
            plans
                .iter()
                .enumerate()
                .map(|(k, p)| TaskSpec {
                    end: labels[k].end.into(),
                    loop_id: k as u8,
                    next_iter: p.next_iter,
                    next_fallthru: p.next_fallthru,
                })
                .collect()
        },
        entries: vec![],
        exits: vec![], // filled from the break pre-pass below
        initial_task,
    };

    // Plan every break before emission so the exit records are written by
    // the initialization sequence (the branch addresses use label fixups).
    let (breaks, exit_specs, notes) = plan_breaks(asm, &ir.nodes, &plans, &labels, &config)?;
    let mut image = image;
    image.exits = exit_specs;
    image.validate(&config)?;

    let mut lower = ZolcLower {
        asm,
        config,
        plans,
        labels,
        cursor: 0,
        stack: Vec::new(),
        breaks,
        break_cursor: 0,
        stubs: Vec::new(),
        after_activate: None,
        notes,
    };

    // Emit top-level nodes; init goes right before the first loop.
    let first_loop_pos = ir
        .nodes
        .iter()
        .position(|n| matches!(n, Node::Loop(_)))
        .expect("plans nonempty implies a loop");
    let (before, rest) = ir.nodes.split_at(first_loop_pos);
    lower.nodes(before, &[])?;
    let init_stats = image.emit_init(lower.asm, Reg::new(1).expect("r1"));
    lower.after_activate = Some(lower.asm.here());
    lower.nodes(rest, &[])?;

    // Fixup stubs (reached only by taken exit branches).
    if !lower.stubs.is_empty() {
        let done = lower.asm.new_label();
        lower.asm.jump(done);
        let stubs = std::mem::take(&mut lower.stubs);
        for stub in stubs {
            lower.asm.bind(stub.label)?;
            for k in &stub.clear {
                lower.asm.emit(Instr::Zwr {
                    region: ZolcRegion::Loop,
                    index: *k,
                    field: loop_field::COUNT,
                    rs: Reg::ZERO,
                });
            }
            if lower.config.tasks() > 0 {
                lower.asm.emit(Instr::Zctl {
                    op: ZolcCtl::Activate { task: stub.task },
                });
            }
            lower.asm.jump(stub.resume);
        }
        lower.asm.bind(done)?;
    }

    // Resolve the final image (labels are all bound now).
    let notes = lower.notes.clone();
    let resolved = {
        let asm_ref: &Asm = lower.asm;
        image.resolve(|l| asm_ref.label_addr(l))?
    };
    resolved.validate(&config)?;

    Ok(LoweredInfo {
        image: Some(resolved),
        init_instructions: init_stats.instructions,
        notes,
    })
}

impl ZolcLower<'_> {
    /// Emits `nodes`; if `end_labels` is non-empty they are bound exactly
    /// at the final instruction emitted (appending a `nop` when the last
    /// node cannot serve as a unique final instruction).
    fn nodes(&mut self, nodes: &[Node], end_labels: &[Label]) -> Result<(), LowerError> {
        // Drop empty code blocks so "last node" reasoning is sound.
        let effective: Vec<&Node> = nodes
            .iter()
            .filter(|n| !matches!(n, Node::Code(v) if v.is_empty()))
            .collect();
        if effective.is_empty() {
            if !end_labels.is_empty() {
                self.bind_all(end_labels)?;
                self.asm.emit(Instr::Nop);
            }
            return Ok(());
        }
        let last = effective.len() - 1;
        for (pos, n) in effective.iter().enumerate() {
            let tail = if pos == last { end_labels } else { &[] };
            match n {
                Node::Code(instrs) => {
                    if tail.is_empty() {
                        self.asm.emit_all(instrs.iter().copied());
                    } else {
                        let (head, final_i) = instrs.split_at(instrs.len() - 1);
                        self.asm.emit_all(head.iter().copied());
                        self.bind_all(tail)?;
                        self.asm.emit(final_i[0]);
                    }
                }
                Node::Loop(l) => self.lower_loop(l, tail)?,
                Node::If { cond, then, els } => {
                    self.lower_if(*cond, then, els)?;
                    if !tail.is_empty() {
                        self.bind_all(tail)?;
                        self.asm.emit(Instr::Nop);
                    }
                }
                Node::BreakIf { cond, levels } => {
                    self.lower_break(*cond, *levels)?;
                    if !tail.is_empty() {
                        self.bind_all(tail)?;
                        self.asm.emit(Instr::Nop);
                    }
                }
                Node::While { header, cond, body } => {
                    // The whole subtree is software: counted loops inside
                    // it use ordinary down-counters and breaks resolve
                    // against software exit labels. Branches stay within
                    // the current task body, so an active controller
                    // never sees them.
                    let mut sw = SwLower {
                        asm: &mut *self.asm,
                        hw: false,
                        exits: Vec::new(),
                    };
                    sw.lower_while(header, *cond, body)?;
                    if !tail.is_empty() {
                        self.bind_all(tail)?;
                        self.asm.emit(Instr::Nop);
                    }
                }
            }
        }
        Ok(())
    }

    fn bind_all(&mut self, labels: &[Label]) -> Result<(), LowerError> {
        for l in labels {
            self.asm.bind(*l)?;
        }
        Ok(())
    }

    fn lower_loop(&mut self, l: &LoopNode, chain_ends: &[Label]) -> Result<(), LowerError> {
        let id = self.cursor;
        self.cursor += 1;
        debug_assert_eq!(self.plans[id].trips, l.trips);

        // Data-dependent limit: write it here (the preheader), padding so
        // the write retires before the loop's end address is fetched
        // (≥ 3 instructions of lead).
        if let Trips::Reg(r) = l.trips {
            self.asm.emit(Instr::Zwr {
                region: ZolcRegion::Loop,
                index: id as u8,
                field: loop_field::LIMIT,
                rs: r,
            });
            let lead = min_len(&l.body).max(1);
            for _ in lead..3 {
                self.asm.emit(Instr::Nop);
            }
        }

        // A loop body must not start immediately after `zctl.on`: the
        // activation only becomes visible at the post-sync refetch, which
        // would skip the entry-initialization rule for this start address.
        if self.after_activate == Some(self.asm.here()) {
            self.asm.emit(Instr::Nop);
        }

        let labels_start = self.labels[id].start;
        let labels_end = self.labels[id].end;
        let labels_after = self.labels[id].after;
        self.asm.bind(labels_start)?;
        self.stack.push(id as u8);
        let mut ends: Vec<Label> = vec![labels_end];
        ends.extend_from_slice(chain_ends);
        self.nodes(&l.body, &ends)?;
        self.stack.pop();
        self.asm.bind(labels_after)?;
        Ok(())
    }

    fn lower_if(&mut self, cond: Cond, then: &[Node], els: &[Node]) -> Result<(), LowerError> {
        let else_l = self.asm.new_label();
        self.asm.branch(cond.branch_unless(), else_l);
        self.nodes(then, &[])?;
        if els.is_empty() {
            self.asm.bind(else_l)?;
        } else {
            let join = self.asm.new_label();
            self.asm.jump(join);
            self.asm.bind(else_l)?;
            self.nodes(els, &[])?;
            self.asm.bind(join)?;
        }
        Ok(())
    }

    fn lower_break(&mut self, cond: Cond, levels: u8) -> Result<(), LowerError> {
        // Validity was established by the pre-pass; re-derive for the
        // error message if the cursor ran dry (cannot happen when the
        // pre-pass walked the same tree).
        if self.break_cursor >= self.breaks.len() {
            return Err(LowerError::BreakTooDeep {
                levels,
                depth: self.stack.len(),
            });
        }
        let plan = &self.breaks[self.break_cursor];
        self.break_cursor += 1;
        match plan {
            PlannedBreak::Record { branch, resume } => {
                // Bind the pre-allocated label at the branch so the exit
                // record written at initialization matches this address.
                let (branch, resume) = (*branch, *resume);
                self.asm.bind(branch)?;
                self.asm.branch(cond.branch_if(), resume);
            }
            PlannedBreak::Stub(stub) => {
                let label = stub.label;
                let info = StubInfo {
                    label: stub.label,
                    clear: stub.clear.clone(),
                    task: stub.task,
                    resume: stub.resume,
                };
                self.asm.branch(cond.branch_if(), label);
                self.stubs.push(info);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zolc_isa::reg;

    fn simple_loop(trips: u32, body: Vec<Node>) -> LoopIr {
        LoopIr {
            name: "t".into(),
            nodes: vec![Node::Loop(LoopNode {
                trips: Trips::Const(trips),
                index: Some(IndexSpec {
                    reg: reg(20),
                    init: 0,
                    step: 1,
                }),
                counter: reg(11),
                body,
            })],
        }
    }

    #[test]
    fn baseline_emits_counter_and_branch() {
        let ir = simple_loop(5, vec![Node::code([Instr::Nop])]);
        let mut asm = Asm::new();
        lower_into(&mut asm, &ir, &Target::Baseline).unwrap();
        asm.emit(Instr::Halt);
        let p = asm.finish().unwrap();
        let text = p.text();
        assert!(text.iter().any(|i| matches!(i, Instr::Bne { .. })));
        assert!(text
            .iter()
            .any(|i| matches!(i, Instr::Addi { imm: -1, .. })));
    }

    #[test]
    fn hwloop_emits_dbnz() {
        let ir = simple_loop(5, vec![Node::code([Instr::Nop])]);
        let mut asm = Asm::new();
        lower_into(&mut asm, &ir, &Target::HwLoop).unwrap();
        asm.emit(Instr::Halt);
        let p = asm.finish().unwrap();
        assert!(p.text().iter().any(|i| matches!(i, Instr::Dbnz { .. })));
        assert!(!p.text().iter().any(|i| matches!(i, Instr::Bne { .. })));
    }

    #[test]
    fn zolc_body_has_no_loop_control() {
        let ir = simple_loop(5, vec![Node::code([Instr::Nop, Instr::Nop])]);
        let mut asm = Asm::new();
        let info = lower_into(&mut asm, &ir, &Target::Zolc(ZolcConfig::lite())).unwrap();
        asm.emit(Instr::Halt);
        let p = asm.finish().unwrap();
        // no branches at all: loop control is in hardware
        assert!(!p.text().iter().any(|i| i.is_cond_branch()));
        let image = info.image.expect("image");
        assert_eq!(image.loops.len(), 1);
        assert_eq!(image.tasks.len(), 1);
        assert!(info.init_instructions > 2);
        // start/end resolved and ordered
        let (s, e) = (
            image.loops[0].start.abs().unwrap(),
            image.loops[0].end.abs().unwrap(),
        );
        assert!(s <= e);
    }

    #[test]
    fn zolc_nested_tasks_chain() {
        // perfect 2-nest: outer body is exactly the inner loop
        let inner = Node::Loop(LoopNode {
            trips: Trips::Const(3),
            index: None,
            counter: reg(12),
            body: vec![Node::code([Instr::Nop, Instr::Nop])],
        });
        let ir = LoopIr {
            name: "nest".into(),
            nodes: vec![Node::Loop(LoopNode {
                trips: Trips::Const(2),
                index: None,
                counter: reg(11),
                body: vec![inner],
            })],
        };
        let mut asm = Asm::new();
        let info = lower_into(&mut asm, &ir, &Target::Zolc(ZolcConfig::lite())).unwrap();
        let image = info.image.unwrap();
        assert_eq!(image.tasks.len(), 2);
        // outer = loop 0, inner = loop 1 (pre-order); both end at the same
        // address; initial task is the inner one
        let outer_end = image.tasks[0].end.abs().unwrap();
        let inner_end = image.tasks[1].end.abs().unwrap();
        assert_eq!(outer_end, inner_end);
        assert_eq!(image.initial_task, 1);
        // inner falls through to the outer task, outer re-enters the inner
        assert_eq!(image.tasks[1].next_fallthru, 0);
        assert_eq!(image.tasks[0].next_iter, 1);
        assert_eq!(image.tasks[0].next_fallthru, TASK_NONE);
    }

    #[test]
    fn zolc_loop_sequence_links_fallthrough() {
        let mk = |ctr: u8| {
            Node::Loop(LoopNode {
                trips: Trips::Const(2),
                index: None,
                counter: reg(ctr),
                body: vec![Node::code([Instr::Nop, Instr::Nop])],
            })
        };
        let ir = LoopIr {
            name: "seq".into(),
            nodes: vec![mk(11), Node::code([Instr::Nop]), mk(12)],
        };
        let mut asm = Asm::new();
        let info = lower_into(&mut asm, &ir, &Target::Zolc(ZolcConfig::lite())).unwrap();
        let image = info.image.unwrap();
        assert_eq!(image.tasks[0].next_fallthru, 1);
        assert_eq!(image.tasks[1].next_fallthru, TASK_NONE);
    }

    #[test]
    fn break_too_deep_rejected() {
        let ir = LoopIr {
            name: "b".into(),
            nodes: vec![Node::BreakIf {
                cond: Cond::Gtz(reg(1)),
                levels: 1,
            }],
        };
        let mut asm = Asm::new();
        assert!(matches!(
            lower_into(&mut asm, &ir, &Target::Baseline),
            Err(LowerError::BreakTooDeep { .. })
        ));
    }

    #[test]
    fn loop_inside_if_rejected() {
        let ir = LoopIr {
            name: "bad".into(),
            nodes: vec![Node::If {
                cond: Cond::Gtz(reg(1)),
                then: vec![Node::Loop(LoopNode {
                    trips: Trips::Const(1),
                    index: None,
                    counter: reg(11),
                    body: vec![],
                })],
                els: vec![],
            }],
        };
        let mut asm = Asm::new();
        assert!(matches!(
            lower_into(&mut asm, &ir, &Target::Zolc(ZolcConfig::lite())),
            Err(LowerError::LoopInsideIf)
        ));
    }

    #[test]
    fn body_writing_index_register_rejected() {
        let ir = simple_loop(
            3,
            vec![Node::code([Instr::Addi {
                rt: reg(20),
                rs: reg(20),
                imm: 1,
            }])],
        );
        let mut asm = Asm::new();
        assert!(matches!(
            lower_into(&mut asm, &ir, &Target::Zolc(ZolcConfig::lite())),
            Err(LowerError::RegisterConflict(_))
        ));
        // the software targets also protect the counter
        let ir2 = simple_loop(
            3,
            vec![Node::code([Instr::Addi {
                rt: reg(11),
                rs: reg(11),
                imm: 1,
            }])],
        );
        let mut asm2 = Asm::new();
        assert!(matches!(
            lower_into(&mut asm2, &ir2, &Target::Baseline),
            Err(LowerError::RegisterConflict(_))
        ));
    }

    #[test]
    fn micro_config_rejects_nests() {
        let inner = Node::Loop(LoopNode {
            trips: Trips::Const(3),
            index: None,
            counter: reg(12),
            body: vec![Node::code([Instr::Nop])],
        });
        let ir = LoopIr {
            name: "nest".into(),
            nodes: vec![Node::Loop(LoopNode {
                trips: Trips::Const(2),
                index: None,
                counter: reg(11),
                body: vec![inner],
            })],
        };
        let mut asm = Asm::new();
        assert!(matches!(
            lower_into(&mut asm, &ir, &Target::Zolc(ZolcConfig::micro())),
            Err(LowerError::Image(_))
        ));
    }

    #[test]
    fn break_uses_exit_record_on_full_and_stub_on_lite() {
        let ir = LoopIr {
            name: "brk".into(),
            nodes: vec![Node::Loop(LoopNode {
                trips: Trips::Const(10),
                index: None,
                counter: reg(11),
                body: vec![
                    Node::code([Instr::Nop]),
                    Node::BreakIf {
                        cond: Cond::Gtz(reg(2)),
                        levels: 1,
                    },
                    Node::code([Instr::Nop]),
                ],
            })],
        };
        let mut asm_full = Asm::new();
        let info_full = lower_into(&mut asm_full, &ir, &Target::Zolc(ZolcConfig::full())).unwrap();
        let image = info_full.image.unwrap();
        assert_eq!(image.exits.len(), 1);
        assert!(info_full.notes.is_empty());

        let mut asm_lite = Asm::new();
        let info_lite = lower_into(&mut asm_lite, &ir, &Target::Zolc(ZolcConfig::lite())).unwrap();
        assert!(info_lite.image.unwrap().exits.is_empty());
        assert_eq!(info_lite.notes.len(), 1);
        // the stub exists: a zctl activate beyond the init sequence
        asm_lite.emit(Instr::Halt);
        let p = asm_lite.finish().unwrap();
        let activates = p
            .text()
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Instr::Zctl {
                        op: ZolcCtl::Activate { .. }
                    }
                )
            })
            .count();
        assert_eq!(activates, 2);
    }

    #[test]
    fn data_dependent_limit_gets_preheader_zwr_with_lead() {
        let ir = LoopIr {
            name: "dyn".into(),
            nodes: vec![
                Node::code([Instr::Addi {
                    rt: reg(9),
                    rs: Reg::ZERO,
                    imm: 7,
                }]),
                Node::Loop(LoopNode {
                    trips: Trips::Reg(reg(9)),
                    index: None,
                    counter: reg(11),
                    // 1-instruction body: needs 2 pad nops for the ≥3 lead
                    body: vec![Node::code([Instr::Nop])],
                }),
            ],
        };
        let mut asm = Asm::new();
        let info = lower_into(&mut asm, &ir, &Target::Zolc(ZolcConfig::lite())).unwrap();
        asm.emit(Instr::Halt);
        let p = asm.finish().unwrap();
        let image = info.image.unwrap();
        let start = image.loops[0].start.abs().unwrap();
        let end = image.loops[0].end.abs().unwrap();
        // find the in-loop zwr (the one right before the body)
        let zwr_pos = (0..p.text().len())
            .rev()
            .find(
                |&k| matches!(p.text()[k], Instr::Zwr { field, .. } if field == loop_field::LIMIT),
            )
            .unwrap() as u32
            * 4;
        assert!(zwr_pos < start);
        assert!(
            (end - zwr_pos) / 4 >= 3,
            "zwr at {zwr_pos:#x} too close to end {end:#x}"
        );
    }

    #[test]
    fn while_lowers_to_branch_code_on_every_target() {
        let ir = LoopIr {
            name: "w".into(),
            nodes: vec![
                Node::code([Instr::Addi {
                    rt: reg(2),
                    rs: Reg::ZERO,
                    imm: 5,
                }]),
                Node::While {
                    header: vec![Instr::Nop],
                    cond: Cond::Gtz(reg(2)),
                    body: vec![Node::code([Instr::Addi {
                        rt: reg(2),
                        rs: reg(2),
                        imm: -1,
                    }])],
                },
            ],
        };
        for target in [
            Target::Baseline,
            Target::HwLoop,
            Target::Zolc(ZolcConfig::lite()),
        ] {
            let mut asm = Asm::new();
            let info = lower_into(&mut asm, &ir, &target).unwrap();
            // a while is not a counted loop: no controller involvement
            assert!(info.image.is_none(), "{target}");
            asm.emit(Instr::Halt);
            let p = asm.finish().unwrap();
            assert!(
                p.text().iter().any(|i| matches!(i, Instr::Blez { .. })),
                "{target}: exit branch missing"
            );
            assert!(
                p.text().iter().any(|i| matches!(i, Instr::J { .. })),
                "{target}: back-jump missing"
            );
        }
    }

    #[test]
    fn counted_loop_inside_while_stays_software_under_zolc() {
        let inner = Node::Loop(LoopNode {
            trips: Trips::Const(3),
            index: None,
            counter: reg(11),
            body: vec![Node::code([Instr::Addi {
                rt: reg(3),
                rs: reg(3),
                imm: 1,
            }])],
        });
        let ir = LoopIr {
            name: "wl".into(),
            nodes: vec![
                Node::code([Instr::Addi {
                    rt: reg(2),
                    rs: Reg::ZERO,
                    imm: 2,
                }]),
                Node::Loop(LoopNode {
                    trips: Trips::Const(2),
                    index: None,
                    counter: reg(12),
                    body: vec![
                        Node::While {
                            header: vec![Instr::Nop],
                            cond: Cond::Gtz(reg(2)),
                            body: vec![
                                inner,
                                Node::code([Instr::Addi {
                                    rt: reg(2),
                                    rs: reg(2),
                                    imm: -1,
                                }]),
                            ],
                        },
                        Node::code([Instr::Nop]),
                    ],
                }),
            ],
        };
        let mut asm = Asm::new();
        let info = lower_into(&mut asm, &ir, &Target::Zolc(ZolcConfig::lite())).unwrap();
        let image = info.image.expect("outer counted loop maps to hardware");
        // only the outer loop enters the task graph; the counted loop
        // inside the while keeps its software down-counter latch
        assert_eq!(image.loops.len(), 1);
        asm.emit(Instr::Halt);
        let p = asm.finish().unwrap();
        assert!(p.text().iter().any(|i| matches!(i, Instr::Bne { .. })));
    }

    #[test]
    fn break_inside_while_targets_the_while_exit() {
        // while (r2 > 0) { if (r3 == r4) break; r2 -= 1 } — on every target
        let ir = LoopIr {
            name: "wb".into(),
            nodes: vec![Node::While {
                header: vec![Instr::Nop],
                cond: Cond::Gtz(reg(2)),
                body: vec![
                    Node::BreakIf {
                        cond: Cond::Eq(reg(3), reg(4)),
                        levels: 1,
                    },
                    Node::code([Instr::Addi {
                        rt: reg(2),
                        rs: reg(2),
                        imm: -1,
                    }]),
                ],
            }],
        };
        for target in [Target::Baseline, Target::Zolc(ZolcConfig::lite())] {
            let mut asm = Asm::new();
            lower_into(&mut asm, &ir, &target).unwrap();
        }
        // a break deeper than the software nesting is still rejected
        let too_deep = LoopIr {
            name: "wb2".into(),
            nodes: vec![Node::While {
                header: vec![],
                cond: Cond::Gtz(reg(2)),
                body: vec![Node::BreakIf {
                    cond: Cond::Eq(reg(3), reg(4)),
                    levels: 2,
                }],
            }],
        };
        let mut asm = Asm::new();
        assert!(matches!(
            lower_into(&mut asm, &too_deep, &Target::Baseline),
            Err(LowerError::BreakTooDeep { .. })
        ));
    }

    #[test]
    fn zolc_falls_back_to_plain_code_without_loops() {
        let ir = LoopIr {
            name: "noloop".into(),
            nodes: vec![Node::code([Instr::Nop, Instr::Nop])],
        };
        let mut asm = Asm::new();
        let info = lower_into(&mut asm, &ir, &Target::Zolc(ZolcConfig::lite())).unwrap();
        assert!(info.image.is_none());
        assert_eq!(info.init_instructions, 0);
    }
}
