//! The structured loop IR.
//!
//! Benchmarks are written once in this IR and lowered three ways
//! ([`crate::Target`]): software loops (`XRdefault`), branch-decrement
//! loops (`XRhrdwil`) and ZOLC form. Bodies are straight-line XR32
//! instructions plus structured `if`/`break`; loops carry the counted-trip
//! information the hardware schemes consume.

use std::fmt;
use zolc_isa::{Instr, Reg};

/// A branch condition on register values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    /// `a == b`
    Eq(Reg, Reg),
    /// `a != b`
    Ne(Reg, Reg),
    /// `a <= 0` (signed)
    Lez(Reg),
    /// `a > 0` (signed)
    Gtz(Reg),
    /// `a < 0` (signed)
    Ltz(Reg),
    /// `a >= 0` (signed)
    Gez(Reg),
}

impl Cond {
    /// Registers the condition reads.
    pub fn srcs(&self) -> [Option<Reg>; 2] {
        match *self {
            Cond::Eq(a, b) | Cond::Ne(a, b) => [Some(a), Some(b)],
            Cond::Lez(a) | Cond::Gtz(a) | Cond::Ltz(a) | Cond::Gez(a) => [Some(a), None],
        }
    }

    /// The branch instruction taken when the condition **holds** (offset 0,
    /// patched by the assembler).
    pub fn branch_if(self) -> Instr {
        match self {
            Cond::Eq(a, b) => Instr::Beq {
                rs: a,
                rt: b,
                off: 0,
            },
            Cond::Ne(a, b) => Instr::Bne {
                rs: a,
                rt: b,
                off: 0,
            },
            Cond::Lez(a) => Instr::Blez { rs: a, off: 0 },
            Cond::Gtz(a) => Instr::Bgtz { rs: a, off: 0 },
            Cond::Ltz(a) => Instr::Bltz { rs: a, off: 0 },
            Cond::Gez(a) => Instr::Bgez { rs: a, off: 0 },
        }
    }

    /// The branch instruction taken when the condition **fails**.
    pub fn branch_unless(self) -> Instr {
        self.negate().branch_if()
    }

    /// The logical negation.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq(a, b) => Cond::Ne(a, b),
            Cond::Ne(a, b) => Cond::Eq(a, b),
            Cond::Lez(a) => Cond::Gtz(a),
            Cond::Gtz(a) => Cond::Lez(a),
            Cond::Ltz(a) => Cond::Gez(a),
            Cond::Gez(a) => Cond::Ltz(a),
        }
    }
}

/// Where a loop's trip count comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trips {
    /// Known at build time (must be ≥ 1).
    Const(u32),
    /// In a register at loop entry (≥ 1 at runtime; recomputed per
    /// activation for nested loops).
    Reg(Reg),
}

/// A loop's optional hardware-maintainable index.
///
/// Under ZOLC lowering the index calculation unit owns `reg`: the body may
/// *read* it but must not write it. Under the software lowerings the loop
/// preheader/latch maintains it with ordinary instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexSpec {
    /// The index register.
    pub reg: Reg,
    /// Initial value on loop entry.
    pub init: i32,
    /// Step per iteration.
    pub step: i32,
}

/// A counted loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopNode {
    /// Trip count source.
    pub trips: Trips,
    /// Optional index maintained across iterations.
    pub index: Option<IndexSpec>,
    /// Scratch register for software loop control (down-counter). Unused
    /// by the ZOLC lowering; must not be touched by the body.
    pub counter: Reg,
    /// The loop body.
    pub body: Vec<Node>,
}

/// One structured IR node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Straight-line instructions.
    Code(Vec<Instr>),
    /// A counted loop.
    Loop(LoopNode),
    /// `if cond { then } else { els }`.
    If {
        /// The condition.
        cond: Cond,
        /// Taken when `cond` holds.
        then: Vec<Node>,
        /// Taken otherwise (may be empty).
        els: Vec<Node>,
    },
    /// Early exit: leave `levels` enclosing loops when `cond` holds
    /// (1 = innermost).
    BreakIf {
        /// The exit condition.
        cond: Cond,
        /// How many enclosing loops to leave.
        levels: u8,
    },
    /// A data-dependent (`while`-style) loop: each iteration re-runs
    /// `header`, then exits when `cond` fails.
    ///
    /// The trip count is unknown at loop entry, so no hardware scheme
    /// applies: every target lowers it to the same explicit branch code
    /// (header, conditional exit, body, back-jump). Under ZOLC targets
    /// the whole subtree is software — counted loops *inside* it are
    /// lowered as software loops and never enter the task graph, which
    /// is exactly what `retarget`'s handledness filters decide when they
    /// meet the same shape in a binary.
    While {
        /// Straight-line code recomputing the condition inputs, run at
        /// the top of every iteration (may be empty).
        header: Vec<Instr>,
        /// The loop continues while this holds.
        cond: Cond,
        /// The loop body.
        body: Vec<Node>,
    },
}

impl Node {
    /// Convenience constructor for a straight-line block.
    pub fn code<I: IntoIterator<Item = Instr>>(instrs: I) -> Node {
        Node::Code(instrs.into_iter().collect())
    }
}

/// A complete kernel control structure.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LoopIr {
    /// Kernel name (reporting only).
    pub name: String,
    /// Top-level nodes (setup code, loop nests, teardown code).
    pub nodes: Vec<Node>,
}

impl LoopIr {
    /// Creates an empty IR with a name.
    pub fn new(name: impl Into<String>) -> LoopIr {
        LoopIr {
            name: name.into(),
            nodes: Vec::new(),
        }
    }

    /// Total number of loops in the structure.
    pub fn loop_count(&self) -> usize {
        fn walk(nodes: &[Node]) -> usize {
            nodes
                .iter()
                .map(|n| match n {
                    Node::Loop(l) => 1 + walk(&l.body),
                    Node::While { body, .. } => 1 + walk(body),
                    Node::If { then, els, .. } => walk(then) + walk(els),
                    _ => 0,
                })
                .sum()
        }
        walk(&self.nodes)
    }

    /// Maximum loop nesting depth.
    pub fn max_depth(&self) -> usize {
        fn walk(nodes: &[Node]) -> usize {
            nodes
                .iter()
                .map(|n| match n {
                    Node::Loop(l) => 1 + walk(&l.body),
                    Node::While { body, .. } => 1 + walk(body),
                    Node::If { then, els, .. } => walk(then).max(walk(els)),
                    _ => 0,
                })
                .max()
                .unwrap_or(0)
        }
        walk(&self.nodes)
    }
}

impl fmt::Display for LoopIr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn walk(nodes: &[Node], depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let pad = "  ".repeat(depth);
            for n in nodes {
                match n {
                    Node::Code(instrs) => writeln!(f, "{pad}code[{}]", instrs.len())?,
                    Node::Loop(l) => {
                        let trips = match l.trips {
                            Trips::Const(n) => n.to_string(),
                            Trips::Reg(r) => r.to_string(),
                        };
                        writeln!(f, "{pad}loop x{trips}")?;
                        walk(&l.body, depth + 1, f)?;
                    }
                    Node::If { then, els, .. } => {
                        writeln!(f, "{pad}if")?;
                        walk(then, depth + 1, f)?;
                        if !els.is_empty() {
                            writeln!(f, "{pad}else")?;
                            walk(els, depth + 1, f)?;
                        }
                    }
                    Node::BreakIf { levels, .. } => writeln!(f, "{pad}break_if({levels})")?,
                    Node::While { header, body, .. } => {
                        writeln!(f, "{pad}while (header[{}])", header.len())?;
                        walk(body, depth + 1, f)?;
                    }
                }
            }
            Ok(())
        }
        writeln!(f, "{}:", self.name)?;
        walk(&self.nodes, 1, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zolc_isa::reg;

    #[test]
    fn cond_negation_roundtrip() {
        for c in [
            Cond::Eq(reg(1), reg(2)),
            Cond::Ne(reg(1), reg(2)),
            Cond::Lez(reg(3)),
            Cond::Gtz(reg(3)),
            Cond::Ltz(reg(3)),
            Cond::Gez(reg(3)),
        ] {
            assert_eq!(c.negate().negate(), c);
            assert!(c.branch_if().is_cond_branch());
            assert!(c.branch_unless().is_cond_branch());
            assert_ne!(c.branch_if(), c.branch_unless());
        }
    }

    #[test]
    fn loop_counting_and_depth() {
        let inner = LoopNode {
            trips: Trips::Const(4),
            index: None,
            counter: reg(11),
            body: vec![Node::code([Instr::Nop])],
        };
        let outer = LoopNode {
            trips: Trips::Const(2),
            index: None,
            counter: reg(12),
            body: vec![
                Node::Loop(inner.clone()),
                Node::code([Instr::Nop]),
                Node::Loop(inner),
            ],
        };
        let ir = LoopIr {
            name: "t".into(),
            nodes: vec![Node::Loop(outer)],
        };
        assert_eq!(ir.loop_count(), 3);
        assert_eq!(ir.max_depth(), 2);
        let s = ir.to_string();
        assert!(s.contains("loop x2"));
        assert!(s.contains("loop x4"));
    }

    #[test]
    fn while_counts_as_a_loop_level() {
        let ir = LoopIr {
            name: "w".into(),
            nodes: vec![Node::While {
                header: vec![Instr::Nop],
                cond: Cond::Gtz(reg(2)),
                body: vec![Node::Loop(LoopNode {
                    trips: Trips::Const(4),
                    index: None,
                    counter: reg(11),
                    body: vec![Node::code([Instr::Nop])],
                })],
            }],
        };
        assert_eq!(ir.loop_count(), 2);
        assert_eq!(ir.max_depth(), 2);
        let s = ir.to_string();
        assert!(s.contains("while (header[1])"));
        assert!(s.contains("loop x4"));
    }

    #[test]
    fn display_shows_structure() {
        let ir = LoopIr {
            name: "k".into(),
            nodes: vec![Node::If {
                cond: Cond::Gtz(reg(1)),
                then: vec![Node::BreakIf {
                    cond: Cond::Eq(reg(1), reg(2)),
                    levels: 1,
                }],
                els: vec![Node::code([Instr::Nop])],
            }],
        };
        let s = ir.to_string();
        assert!(s.contains("if"));
        assert!(s.contains("else"));
        assert!(s.contains("break_if(1)"));
    }
}
