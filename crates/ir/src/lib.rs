//! # zolc-ir — structured loop IR with three lowerings
//!
//! Benchmarks for the ZOLC study are written once in a small structured IR
//! ([`LoopIr`]: straight-line XR32 code + counted loops + `if` + early
//! exits) and lowered to the three processor configurations the paper
//! compares (its Fig. 2):
//!
//! * [`Target::Baseline`] — `XRdefault`, software loop overhead;
//! * [`Target::HwLoop`] — `XRhrdwil`, branch-decrement (`dbnz`) loops;
//! * [`Target::Zolc`] — zero-overhead loop controller form: bodies only,
//!   plus the controller initialization sequence.
//!
//! Because the body instructions are shared verbatim between the three
//! lowerings, any cycle-count difference is attributable purely to loop
//! control.
//!
//! # Examples
//!
//! ```
//! use zolc_ir::{lower_into, LoopIr, LoopNode, Node, Target, Trips, IndexSpec};
//! use zolc_isa::{reg, Asm, Instr};
//!
//! // for i in 0..8 { acc += i }
//! let ir = LoopIr {
//!     name: "sum".into(),
//!     nodes: vec![Node::Loop(LoopNode {
//!         trips: Trips::Const(8),
//!         index: Some(IndexSpec { reg: reg(20), init: 0, step: 1 }),
//!         counter: reg(11),
//!         body: vec![Node::code([
//!             Instr::Add { rd: reg(2), rs: reg(2), rt: reg(20) },
//!             Instr::Nop,
//!         ])],
//!     })],
//! };
//! let mut asm = Asm::new();
//! lower_into(&mut asm, &ir, &Target::Baseline)?;
//! asm.emit(Instr::Halt);
//! let program = asm.finish().unwrap();
//! assert!(program.text().len() > 4);
//! # Ok::<(), zolc_ir::LowerError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ir;
mod lower;

pub use ir::{Cond, IndexSpec, LoopIr, LoopNode, Node, Trips};
pub use lower::{lower_into, LowerError, LoweredInfo, Target};
