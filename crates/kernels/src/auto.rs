//! The automatic retargeting path: benchmark kernels built from their
//! *baseline binaries* rather than from IR.
//!
//! The hand path lowers a kernel's IR directly for [`Target::Zolc`]; the
//! auto path lowers it for [`Target::Baseline`] and hands the resulting
//! *binary* to [`zolc_cfg::retarget`], which excises the software loop
//! control and synthesizes the controller overlay with no IR knowledge
//! at all — the paper's §2 claim that ZOLC task-to-task data "can be
//! generated automatically from an existing program".
//!
//! The result is an ordinary [`BuiltKernel`], so the whole measurement
//! stack ([`BuiltKernel::run`], the bench `JobMatrix`) runs it
//! unchanged; correctness is still judged against the same bit-exact
//! reference expectation the hand-lowered builds use.

use crate::common::{BuildError, BuiltKernel};
use crate::KernelEntry;
use zolc_cfg::{retarget, Retargeted};
use zolc_core::ZolcConfig;
use zolc_ir::{LoweredInfo, Target};
use zolc_sim::CompiledProgram;

/// Summary statistics of one retargeting run (also carried by the bench
/// matrix's `ZOLCauto` measurements).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AutoStats {
    /// Natural loops the retargeter left in software.
    pub unhandled: usize,
    /// Loop-control instructions excised from the baseline text.
    pub excised: usize,
    /// Hardware loops in the synthesized overlay.
    pub hw_loops: usize,
    /// Body-start byte addresses (in the *original* program) of the
    /// hardware-mapped loops, in overlay order — lets sweep drivers
    /// attribute per-loop retargeting outcomes back to known loop
    /// positions (e.g. `zolc_gen`'s `Assembled::loop_starts`).
    pub hw_loop_starts: Vec<u32>,
}

impl From<&Retargeted> for AutoStats {
    /// The single derivation of retarget statistics, shared by the
    /// kernel auto path and the bench matrix's generated-program cells.
    fn from(r: &Retargeted) -> AutoStats {
        AutoStats {
            unhandled: r.unhandled.len(),
            excised: r.excised,
            hw_loops: r.counted.len(),
            hw_loop_starts: r.counted.iter().map(|c| c.start).collect(),
        }
    }
}

/// A kernel built through the automatic retargeting pipeline.
#[derive(Debug, Clone)]
pub struct AutoKernel {
    /// The runnable retargeted kernel (target [`Target::Zolc`]), checked
    /// against the same reference expectation as any hand-lowered build.
    pub built: BuiltKernel,
    /// What the retargeter did to get there.
    pub stats: AutoStats,
}

/// Builds `entry` for [`Target::Baseline`] and auto-retargets the binary
/// onto a ZOLC of configuration `config`.
///
/// # Errors
///
/// Returns [`BuildError::Lower`]/[`BuildError::Asm`] if the baseline
/// build fails and [`BuildError::Retarget`] if the retargeter rejects
/// the binary.
pub fn build_kernel_auto(
    entry: &KernelEntry,
    config: ZolcConfig,
) -> Result<AutoKernel, BuildError> {
    let base = (entry.build)(&Target::Baseline)?;
    let r = retarget(base.program.source(), &config)?;
    let stats = AutoStats::from(&r);
    let Retargeted {
        program,
        image,
        init_instructions,
        notes,
        ..
    } = r;
    Ok(AutoKernel {
        built: BuiltKernel {
            name: base.name,
            program: CompiledProgram::compile(program),
            target: Target::Zolc(config),
            expect: base.expect,
            info: LoweredInfo {
                image: Some(image),
                init_instructions,
                notes,
            },
        },
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find_kernel;
    use zolc_sim::ExecutorKind;

    #[test]
    fn auto_vec_mac_is_correct_on_both_executors() {
        let entry = find_kernel("vec_mac").unwrap();
        let auto = build_kernel_auto(&entry, ZolcConfig::lite()).unwrap();
        assert_eq!(auto.stats.unhandled, 0);
        assert!(auto.stats.excised > 0);
        for kind in [ExecutorKind::CycleAccurate, ExecutorKind::Functional] {
            let run = auto.built.run(10_000_000, kind).unwrap();
            assert!(run.is_correct(), "{kind}: {:?}", run.mismatches);
        }
    }

    #[test]
    fn auto_built_kernel_matches_reference() {
        let entry = find_kernel("fir").unwrap();
        let run = build_kernel_auto(&entry, ZolcConfig::lite())
            .unwrap()
            .built
            .run(10_000_000, ExecutorKind::CycleAccurate)
            .unwrap();
        assert!(
            run.is_correct(),
            "{:?} {:?}",
            run.mismatches,
            run.violations
        );
        assert!(run.stats.cycles > 0);
    }
}
