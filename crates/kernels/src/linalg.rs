//! Linear-algebra kernels: matrix multiply, 2-D convolution and an 8×8
//! two-pass DCT.

use crate::common::{build_kernel, BuildError, BuiltKernel, Expectation, Xorshift};
use zolc_ir::{IndexSpec, LoopIr, LoopNode, Node, Target, Trips};
use zolc_isa::{reg, Asm, Instr, Reg};

/// 8×8×8 integer matrix multiply `C = A · B` (three-deep nest).
pub fn build_matmul(target: &Target) -> Result<BuiltKernel, BuildError> {
    const N: usize = 8;
    build_kernel("matmul", target, |asm: &mut Asm| {
        let mut rng = Xorshift::new(0x3001);
        let a: Vec<i32> = (0..N * N).map(|_| rng.signed(50)).collect();
        let b: Vec<i32> = (0..N * N).map(|_| rng.signed(50)).collect();
        let a_addr = asm.words(&a);
        let b_addr = asm.words(&b);
        let c_addr = asm.zeroed_words(N * N);
        asm.li(reg(9), c_addr as i32);

        // reference
        let mut c = vec![0u32; N * N];
        for i in 0..N {
            for j in 0..N {
                let mut acc: i32 = 0;
                for k in 0..N {
                    acc = acc.wrapping_add(a[i * N + k].wrapping_mul(b[k * N + j]));
                }
                c[i * N + j] = acc as u32;
            }
        }

        let k_loop = Node::Loop(LoopNode {
            trips: Trips::Const(N as u32),
            index: None,
            counter: reg(13),
            body: vec![Node::code([
                Instr::Lw {
                    rt: reg(4),
                    rs: reg(7),
                    off: 0,
                },
                Instr::Lw {
                    rt: reg(5),
                    rs: reg(8),
                    off: 0,
                },
                Instr::Addi {
                    rt: reg(7),
                    rs: reg(7),
                    imm: 4,
                },
                Instr::Addi {
                    rt: reg(8),
                    rs: reg(8),
                    imm: (4 * N) as i16,
                },
                Instr::Mul {
                    rd: reg(4),
                    rs: reg(4),
                    rt: reg(5),
                },
                Instr::Add {
                    rd: reg(6),
                    rs: reg(6),
                    rt: reg(4),
                },
            ])],
        });
        let j_loop = Node::Loop(LoopNode {
            trips: Trips::Const(N as u32),
            index: Some(IndexSpec {
                reg: reg(21),
                init: b_addr as i32,
                step: 4,
            }),
            counter: reg(12),
            body: vec![
                Node::code([
                    Instr::Add {
                        rd: reg(6),
                        rs: Reg::ZERO,
                        rt: Reg::ZERO,
                    },
                    Instr::Add {
                        rd: reg(7),
                        rs: reg(22),
                        rt: Reg::ZERO,
                    },
                    Instr::Add {
                        rd: reg(8),
                        rs: reg(21),
                        rt: Reg::ZERO,
                    },
                ]),
                k_loop,
                Node::code([
                    Instr::Sw {
                        rt: reg(6),
                        rs: reg(9),
                        off: 0,
                    },
                    Instr::Addi {
                        rt: reg(9),
                        rs: reg(9),
                        imm: 4,
                    },
                ]),
            ],
        });
        let ir = LoopIr {
            name: "matmul".into(),
            nodes: vec![Node::Loop(LoopNode {
                trips: Trips::Const(N as u32),
                index: Some(IndexSpec {
                    reg: reg(22),
                    init: a_addr as i32,
                    step: (4 * N) as i32,
                }),
                counter: reg(11),
                body: vec![j_loop],
            })],
        };
        let expect = Expectation {
            mem_words: vec![(c_addr, c)],
            regs: vec![(reg(9), c_addr + (4 * N * N) as u32)],
        };
        (ir, expect)
    })
}

/// 3×3 convolution over a 16×16 image producing 14×14 outputs
/// (four-deep imperfect nest).
pub fn build_conv2d(target: &Target) -> Result<BuiltKernel, BuildError> {
    const W: usize = 16;
    const OW: usize = 14;
    const KDIM: usize = 3;
    build_kernel("conv2d", target, |asm: &mut Asm| {
        let mut rng = Xorshift::new(0x3002);
        let img: Vec<i32> = (0..W * W).map(|_| rng.signed(255)).collect();
        let ker: Vec<i32> = (0..KDIM * KDIM).map(|_| rng.signed(8)).collect();
        let img_addr = asm.words(&img);
        let ker_addr = asm.words(&ker);
        let out_addr = asm.zeroed_words(OW * OW);
        asm.li(reg(9), out_addr as i32); // output pointer
        asm.li(reg(10), ker_addr as i32); // kernel base (constant)

        // reference
        let mut out = vec![0u32; OW * OW];
        for r in 0..OW {
            for c in 0..OW {
                let mut acc: i32 = 0;
                for kr in 0..KDIM {
                    for kc in 0..KDIM {
                        acc = acc.wrapping_add(
                            img[(r + kr) * W + c + kc].wrapping_mul(ker[kr * KDIM + kc]),
                        );
                    }
                }
                out[r * OW + c] = acc as u32;
            }
        }

        let kc_loop = Node::Loop(LoopNode {
            trips: Trips::Const(KDIM as u32),
            index: None,
            counter: reg(14),
            body: vec![Node::code([
                Instr::Lw {
                    rt: reg(4),
                    rs: reg(7),
                    off: 0,
                },
                Instr::Lw {
                    rt: reg(16),
                    rs: reg(8),
                    off: 0,
                },
                Instr::Addi {
                    rt: reg(7),
                    rs: reg(7),
                    imm: 4,
                },
                Instr::Addi {
                    rt: reg(8),
                    rs: reg(8),
                    imm: 4,
                },
                Instr::Mul {
                    rd: reg(4),
                    rs: reg(4),
                    rt: reg(16),
                },
                Instr::Add {
                    rd: reg(6),
                    rs: reg(6),
                    rt: reg(4),
                },
            ])],
        });
        let kr_loop = Node::Loop(LoopNode {
            trips: Trips::Const(KDIM as u32),
            index: Some(IndexSpec {
                reg: reg(21),
                init: 0,
                step: (4 * W) as i32, // image row stride
            }),
            counter: reg(13),
            body: vec![
                Node::code([Instr::Add {
                    rd: reg(7),
                    rs: reg(5),
                    rt: reg(21),
                }]),
                kc_loop,
            ],
        });
        let c_loop = Node::Loop(LoopNode {
            trips: Trips::Const(OW as u32),
            index: Some(IndexSpec {
                reg: reg(22),
                init: 0,
                step: 4, // column byte offset
            }),
            counter: reg(12),
            body: vec![
                Node::code([
                    Instr::Add {
                        rd: reg(6),
                        rs: Reg::ZERO,
                        rt: Reg::ZERO,
                    },
                    Instr::Add {
                        rd: reg(5),
                        rs: reg(23),
                        rt: reg(22),
                    },
                    Instr::Add {
                        rd: reg(8),
                        rs: reg(10),
                        rt: Reg::ZERO,
                    },
                ]),
                kr_loop,
                Node::code([
                    Instr::Sw {
                        rt: reg(6),
                        rs: reg(9),
                        off: 0,
                    },
                    Instr::Addi {
                        rt: reg(9),
                        rs: reg(9),
                        imm: 4,
                    },
                ]),
            ],
        });
        let ir = LoopIr {
            name: "conv2d".into(),
            nodes: vec![Node::Loop(LoopNode {
                trips: Trips::Const(OW as u32),
                index: Some(IndexSpec {
                    reg: reg(23),
                    init: img_addr as i32,
                    step: (4 * W) as i32,
                }),
                counter: reg(11),
                body: vec![c_loop],
            })],
        };
        let expect = Expectation {
            mem_words: vec![(out_addr, out)],
            regs: vec![],
        };
        (ir, expect)
    })
}

/// 8×8 two-dimensional DCT as two sequential 3-deep passes
/// (`T = C·X`, `OUT = T·Cᵀ`) in Q13 fixed point — six loops across two
/// top-level nests, exercising task sequencing.
pub fn build_dct8x8(target: &Target) -> Result<BuiltKernel, BuildError> {
    const N: usize = 8;
    /// Q13 8-point DCT-II coefficient matrix: c[u][x].
    fn dct_matrix() -> Vec<i32> {
        // round(sqrt(alpha/8)*cos((2x+1)uπ/16) * 8192), precomputed
        // (integer literals so the kernel and the reference share them).
        vec![
            2896, 2896, 2896, 2896, 2896, 2896, 2896, 2896, 4017, 3406, 2276, 799, -799, -2276,
            -3406, -4017, 3784, 1567, -1567, -3784, -3784, -1567, 1567, 3784, 3406, -799, -4017,
            -2276, 2276, 4017, 799, -3406, 2896, -2896, -2896, 2896, 2896, -2896, -2896, 2896,
            2276, -4017, 799, 3406, -3406, -799, 4017, -2276, 1567, -3784, 3784, -1567, -1567,
            3784, -3784, 1567, 799, -2276, 3406, -4017, 4017, -3406, 2276, -799,
        ]
    }

    build_kernel("dct8x8", target, |asm: &mut Asm| {
        let mut rng = Xorshift::new(0x3003);
        let x: Vec<i32> = (0..N * N).map(|_| rng.signed(255)).collect();
        let cof = dct_matrix();
        let x_addr = asm.words(&x);
        let c_addr = asm.words(&cof);
        let t_addr = asm.zeroed_words(N * N);
        let o_addr = asm.zeroed_words(N * N);
        asm.li(reg(9), t_addr as i32); // pass-1 output pointer
        asm.li(reg(10), o_addr as i32); // pass-2 output pointer

        // reference
        let mut t = vec![0i32; N * N];
        for u in 0..N {
            for j in 0..N {
                let mut acc: i32 = 0;
                for k in 0..N {
                    acc = acc.wrapping_add(cof[u * N + k].wrapping_mul(x[k * N + j]));
                }
                t[u * N + j] = acc >> 13;
            }
        }
        let mut out = vec![0u32; N * N];
        for u in 0..N {
            for v in 0..N {
                let mut acc: i32 = 0;
                for k in 0..N {
                    acc = acc.wrapping_add(t[u * N + k].wrapping_mul(cof[v * N + k]));
                }
                out[u * N + v] = (acc >> 13) as u32;
            }
        }
        let t_expect: Vec<u32> = t.iter().map(|&v| v as u32).collect();

        // pass 1: T[u][j] = (Σ_k C[u][k]·X[k][j]) >> 13
        // walks: r7 = C row (+4), r8 = X column (+row stride)
        let p1_k = Node::Loop(LoopNode {
            trips: Trips::Const(N as u32),
            index: None,
            counter: reg(13),
            body: vec![Node::code([
                Instr::Lw {
                    rt: reg(4),
                    rs: reg(7),
                    off: 0,
                },
                Instr::Lw {
                    rt: reg(5),
                    rs: reg(8),
                    off: 0,
                },
                Instr::Addi {
                    rt: reg(7),
                    rs: reg(7),
                    imm: 4,
                },
                Instr::Addi {
                    rt: reg(8),
                    rs: reg(8),
                    imm: (4 * N) as i16,
                },
                Instr::Mul {
                    rd: reg(4),
                    rs: reg(4),
                    rt: reg(5),
                },
                Instr::Add {
                    rd: reg(6),
                    rs: reg(6),
                    rt: reg(4),
                },
            ])],
        });
        let p1_j = Node::Loop(LoopNode {
            trips: Trips::Const(N as u32),
            index: Some(IndexSpec {
                reg: reg(21),
                init: x_addr as i32,
                step: 4,
            }),
            counter: reg(12),
            body: vec![
                Node::code([
                    Instr::Add {
                        rd: reg(6),
                        rs: Reg::ZERO,
                        rt: Reg::ZERO,
                    },
                    Instr::Add {
                        rd: reg(7),
                        rs: reg(22),
                        rt: Reg::ZERO,
                    },
                    Instr::Add {
                        rd: reg(8),
                        rs: reg(21),
                        rt: Reg::ZERO,
                    },
                ]),
                p1_k,
                Node::code([
                    Instr::Sra {
                        rd: reg(6),
                        rt: reg(6),
                        sh: 13,
                    },
                    Instr::Sw {
                        rt: reg(6),
                        rs: reg(9),
                        off: 0,
                    },
                    Instr::Addi {
                        rt: reg(9),
                        rs: reg(9),
                        imm: 4,
                    },
                ]),
            ],
        });
        let pass1 = Node::Loop(LoopNode {
            trips: Trips::Const(N as u32),
            index: Some(IndexSpec {
                reg: reg(22),
                init: c_addr as i32,
                step: (4 * N) as i32,
            }),
            counter: reg(11),
            body: vec![p1_j],
        });

        // pass 2: OUT[u][v] = (Σ_k T[u][k]·C[v][k]) >> 13
        // both walk rows (+4): r7 = T row, r8 = C row
        let p2_k = Node::Loop(LoopNode {
            trips: Trips::Const(N as u32),
            index: None,
            counter: reg(13),
            body: vec![Node::code([
                Instr::Lw {
                    rt: reg(4),
                    rs: reg(7),
                    off: 0,
                },
                Instr::Lw {
                    rt: reg(5),
                    rs: reg(8),
                    off: 0,
                },
                Instr::Addi {
                    rt: reg(7),
                    rs: reg(7),
                    imm: 4,
                },
                Instr::Addi {
                    rt: reg(8),
                    rs: reg(8),
                    imm: 4,
                },
                Instr::Mul {
                    rd: reg(4),
                    rs: reg(4),
                    rt: reg(5),
                },
                Instr::Add {
                    rd: reg(6),
                    rs: reg(6),
                    rt: reg(4),
                },
            ])],
        });
        let p2_v = Node::Loop(LoopNode {
            trips: Trips::Const(N as u32),
            index: Some(IndexSpec {
                reg: reg(21),
                init: c_addr as i32,
                step: (4 * N) as i32,
            }),
            counter: reg(12),
            body: vec![
                Node::code([
                    Instr::Add {
                        rd: reg(6),
                        rs: Reg::ZERO,
                        rt: Reg::ZERO,
                    },
                    Instr::Add {
                        rd: reg(7),
                        rs: reg(22),
                        rt: Reg::ZERO,
                    },
                    Instr::Add {
                        rd: reg(8),
                        rs: reg(21),
                        rt: Reg::ZERO,
                    },
                ]),
                p2_k,
                Node::code([
                    Instr::Sra {
                        rd: reg(6),
                        rt: reg(6),
                        sh: 13,
                    },
                    Instr::Sw {
                        rt: reg(6),
                        rs: reg(10),
                        off: 0,
                    },
                    Instr::Addi {
                        rt: reg(10),
                        rs: reg(10),
                        imm: 4,
                    },
                ]),
            ],
        });
        let pass2 = Node::Loop(LoopNode {
            trips: Trips::Const(N as u32),
            index: Some(IndexSpec {
                reg: reg(22),
                init: t_addr as i32,
                step: (4 * N) as i32,
            }),
            counter: reg(11),
            body: vec![p2_v],
        });

        let ir = LoopIr {
            name: "dct8x8".into(),
            nodes: vec![pass1, pass2],
        };
        let expect = Expectation {
            mem_words: vec![(t_addr, t_expect), (o_addr, out)],
            regs: vec![],
        };
        (ir, expect)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{fig2_targets, run_kernel};

    #[test]
    fn matmul_correct_on_all_targets() {
        for t in fig2_targets() {
            let b = build_matmul(&t).unwrap();
            let r = run_kernel(&b, 2_000_000).unwrap();
            assert!(r.is_correct(), "{t}: {:?} {:?}", r.mismatches, r.violations);
        }
    }

    #[test]
    fn conv2d_correct_on_all_targets() {
        for t in fig2_targets() {
            let b = build_conv2d(&t).unwrap();
            let r = run_kernel(&b, 2_000_000).unwrap();
            assert!(r.is_correct(), "{t}: {:?} {:?}", r.mismatches, r.violations);
        }
    }

    #[test]
    fn dct8x8_correct_on_all_targets() {
        for t in fig2_targets() {
            let b = build_dct8x8(&t).unwrap();
            let r = run_kernel(&b, 2_000_000).unwrap();
            assert!(r.is_correct(), "{t}: {:?} {:?}", r.mismatches, r.violations);
        }
    }

    #[test]
    fn dct_pass1_uses_shared_task_graph() {
        // six loops, two top-level nests: the ZOLC image must contain all
        // of them with a cross-nest fall-through link
        let b = build_dct8x8(&zolc_target()).unwrap();
        let img = b.info.image.unwrap();
        assert_eq!(img.loops.len(), 6);
        assert_eq!(img.tasks.len(), 6);
    }

    fn zolc_target() -> Target {
        Target::Zolc(zolc_core::ZolcConfig::lite())
    }
}
