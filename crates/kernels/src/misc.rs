//! Bit-manipulation and sorting kernels: CRC-32, bubble sort, and a
//! 16-point radix-2 FFT.

use crate::common::{build_kernel, BuildError, BuiltKernel, Expectation, Xorshift};
use zolc_ir::{Cond, IndexSpec, LoopIr, LoopNode, Node, Target, Trips};
use zolc_isa::{reg, Asm, Instr, Reg};

/// Bit-serial CRC-32 (polynomial 0x04C11DB7) over 32 bytes.
///
/// The inner bit loop is a pure counter loop (no index register), the
/// sweet spot of the `XRhrdwil` branch-decrement instruction.
pub fn build_crc32(target: &Target) -> Result<BuiltKernel, BuildError> {
    const N: usize = 32;
    const POLY: u32 = 0x04C1_1DB7;
    build_kernel("crc32", target, |asm: &mut Asm| {
        let mut rng = Xorshift::new(0x4001);
        let data: Vec<u8> = (0..N).map(|_| rng.below(256) as u8).collect();
        let d_addr = asm.bytes(&data);
        asm.li(reg(10), POLY as i32);
        asm.li(reg(2), -1); // crc = 0xffff_ffff

        // reference
        let mut crc: u32 = 0xffff_ffff;
        for &byte in &data {
            crc ^= u32::from(byte) << 24;
            for _ in 0..8 {
                let mask = 0u32.wrapping_sub(crc >> 31);
                crc = (crc << 1) ^ (POLY & mask);
            }
        }

        let bit_loop = Node::Loop(LoopNode {
            trips: Trips::Const(8),
            index: None,
            counter: reg(12),
            body: vec![Node::code([
                Instr::Srl {
                    rd: reg(5),
                    rt: reg(2),
                    sh: 31,
                },
                Instr::Sub {
                    rd: reg(5),
                    rs: Reg::ZERO,
                    rt: reg(5),
                },
                Instr::And {
                    rd: reg(5),
                    rs: reg(5),
                    rt: reg(10),
                },
                Instr::Sll {
                    rd: reg(2),
                    rt: reg(2),
                    sh: 1,
                },
                Instr::Xor {
                    rd: reg(2),
                    rs: reg(2),
                    rt: reg(5),
                },
            ])],
        });
        let ir = LoopIr {
            name: "crc32".into(),
            nodes: vec![Node::Loop(LoopNode {
                trips: Trips::Const(N as u32),
                index: Some(IndexSpec {
                    reg: reg(20),
                    init: d_addr as i32,
                    step: 1,
                }),
                counter: reg(11),
                body: vec![
                    Node::code([
                        Instr::Lbu {
                            rt: reg(4),
                            rs: reg(20),
                            off: 0,
                        },
                        Instr::Sll {
                            rd: reg(4),
                            rt: reg(4),
                            sh: 24,
                        },
                        Instr::Xor {
                            rd: reg(2),
                            rs: reg(2),
                            rt: reg(4),
                        },
                    ]),
                    bit_loop,
                ],
            })],
        };
        let expect = Expectation {
            mem_words: vec![],
            regs: vec![(reg(2), crc)],
        };
        (ir, expect)
    })
}

/// Bubble sort of 24 words — the triangular nest: the inner trip count
/// `n-1-i` is recomputed every outer iteration (a data-dependent loop
/// bound, handled by an in-loop `zwr` limit update under ZOLC).
pub fn build_bubble_sort(target: &Target) -> Result<BuiltKernel, BuildError> {
    const N: usize = 24;
    build_kernel("bubble_sort", target, |asm: &mut Asm| {
        let mut rng = Xorshift::new(0x4002);
        let a: Vec<i32> = (0..N).map(|_| rng.signed(10_000)).collect();
        let a_addr = asm.words(&a);

        // reference
        let mut sorted = a.clone();
        let mut swaps: u32 = 0;
        for i in 0..N - 1 {
            for j in 0..N - 1 - i {
                if sorted[j + 1] < sorted[j] {
                    sorted.swap(j, j + 1);
                    swaps += 1;
                }
            }
        }
        let sorted_u: Vec<u32> = sorted.iter().map(|&v| v as u32).collect();

        let inner = Node::Loop(LoopNode {
            trips: Trips::Reg(reg(9)),
            index: Some(IndexSpec {
                reg: reg(20),
                init: a_addr as i32,
                step: 4,
            }),
            counter: reg(12),
            body: vec![
                Node::code([
                    Instr::Lw {
                        rt: reg(4),
                        rs: reg(20),
                        off: 0,
                    },
                    Instr::Lw {
                        rt: reg(5),
                        rs: reg(20),
                        off: 4,
                    },
                    Instr::Slt {
                        rd: reg(6),
                        rs: reg(5),
                        rt: reg(4),
                    },
                ]),
                Node::If {
                    cond: Cond::Ne(reg(6), Reg::ZERO),
                    then: vec![Node::code([
                        Instr::Sw {
                            rt: reg(5),
                            rs: reg(20),
                            off: 0,
                        },
                        Instr::Sw {
                            rt: reg(4),
                            rs: reg(20),
                            off: 4,
                        },
                    ])],
                    els: vec![],
                },
                Node::code([Instr::Add {
                    rd: reg(3),
                    rs: reg(3),
                    rt: reg(6),
                }]),
            ],
        });
        let ir = LoopIr {
            name: "bubble_sort".into(),
            nodes: vec![Node::Loop(LoopNode {
                trips: Trips::Const((N - 1) as u32),
                index: Some(IndexSpec {
                    reg: reg(21),
                    init: 0,
                    step: 1,
                }),
                counter: reg(11),
                body: vec![
                    Node::code([
                        Instr::Addi {
                            rt: reg(9),
                            rs: Reg::ZERO,
                            imm: (N - 1) as i16,
                        },
                        Instr::Sub {
                            rd: reg(9),
                            rs: reg(9),
                            rt: reg(21),
                        },
                    ]),
                    inner,
                ],
            })],
        };
        let expect = Expectation {
            mem_words: vec![(a_addr, sorted_u)],
            regs: vec![(reg(3), swaps)],
        };
        (ir, expect)
    })
}

/// 16-point radix-2 DIT FFT in Q14 fixed point.
///
/// The input is stored bit-reversed; the kernel is the three-level
/// butterfly structure whose middle and inner trip counts (and the
/// twiddle stride) change every stage — all data-dependent bounds from a
/// per-stage parameter table.
pub fn build_fft16(target: &Target) -> Result<BuiltKernel, BuildError> {
    const N: usize = 16;
    const STAGES: usize = 4;
    // Q14 twiddles for e^{-2πi j/16}, j = 0..8
    const WRE: [i32; 8] = [16384, 15137, 11585, 6270, 0, -6270, -11585, -15137];
    const WIM: [i32; 8] = [0, -6270, -11585, -15137, -16384, -15137, -11585, -6270];

    build_kernel("fft16", target, |asm: &mut Asm| {
        let mut rng = Xorshift::new(0x4003);
        let re_in: Vec<i32> = (0..N).map(|_| rng.signed(4000)).collect();
        let im_in: Vec<i32> = (0..N).map(|_| rng.signed(4000)).collect();
        // bit-reversed order for a 16-point DIT
        let rev =
            |i: usize| -> usize { (0..4).fold(0, |acc, b| acc | (((i >> b) & 1) << (3 - b))) };
        let re_br: Vec<i32> = (0..N).map(|i| re_in[rev(i)]).collect();
        let im_br: Vec<i32> = (0..N).map(|i| im_in[rev(i)]).collect();

        let re_addr = asm.words(&re_br);
        let im_addr = asm.words(&im_br);
        assert_eq!(im_addr - re_addr, (4 * N) as u32);
        let wre_addr = asm.words(&WRE);
        let wim_addr = asm.words(&WIM);
        assert_eq!(wim_addr - wre_addr, 32);
        // per-stage parameters: [half_bytes, groups, tstep_bytes, group_stride_bytes]
        let mut params = Vec::new();
        for s in 0..STAGES {
            let half = 1usize << s;
            params.extend_from_slice(&[
                (half * 4) as i32,
                (N >> (s + 1)) as i32,
                (8 >> s) * 4,
                (2 * half * 4) as i32,
            ]);
        }
        let p_addr = asm.words(&params);
        asm.li(reg(20), re_addr as i32); // data base (plain register here)
        asm.li(reg(21), wre_addr as i32); // twiddle base

        // reference: same loops, same Q14 arithmetic
        let mut re = re_br.clone();
        let mut im = im_br.clone();
        for s in 0..STAGES {
            let half = 1usize << s;
            let groups = N >> (s + 1);
            let tstep = 8 >> s;
            for g in 0..groups {
                let base = g * 2 * half;
                for k in 0..half {
                    let (wr, wi) = (WRE[k * tstep], WIM[k * tstep]);
                    let (a, b) = (base + k, base + k + half);
                    let xr = (re[b].wrapping_mul(wr)).wrapping_sub(im[b].wrapping_mul(wi)) >> 14;
                    let xi = (re[b].wrapping_mul(wi)).wrapping_add(im[b].wrapping_mul(wr)) >> 14;
                    re[b] = re[a].wrapping_sub(xr);
                    im[b] = im[a].wrapping_sub(xi);
                    re[a] = re[a].wrapping_add(xr);
                    im[a] = im[a].wrapping_add(xi);
                }
            }
        }
        let re_u: Vec<u32> = re.iter().map(|&v| v as u32).collect();
        let im_u: Vec<u32> = im.iter().map(|&v| v as u32).collect();

        let im_off = (4 * N) as i16; // im[] offset from a re[] pointer
        let k_body = vec![
            Instr::Lw {
                rt: reg(4),
                rs: reg(18),
                off: 0,
            }, // re_b
            Instr::Lw {
                rt: reg(6),
                rs: reg(8),
                off: 0,
            }, // wre
            Instr::Mul {
                rd: reg(2),
                rs: reg(4),
                rt: reg(6),
            },
            Instr::Lw {
                rt: reg(3),
                rs: reg(18),
                off: im_off,
            }, // im_b
            Instr::Lw {
                rt: reg(22),
                rs: reg(8),
                off: 32,
            }, // wim
            Instr::Mul {
                rd: reg(24),
                rs: reg(3),
                rt: reg(22),
            },
            Instr::Sub {
                rd: reg(2),
                rs: reg(2),
                rt: reg(24),
            },
            Instr::Sra {
                rd: reg(2),
                rt: reg(2),
                sh: 14,
            }, // xr
            Instr::Mul {
                rd: reg(24),
                rs: reg(4),
                rt: reg(22),
            },
            Instr::Mul {
                rd: reg(25),
                rs: reg(3),
                rt: reg(6),
            },
            Instr::Add {
                rd: reg(24),
                rs: reg(24),
                rt: reg(25),
            },
            Instr::Sra {
                rd: reg(24),
                rt: reg(24),
                sh: 14,
            }, // xi
            Instr::Lw {
                rt: reg(4),
                rs: reg(16),
                off: 0,
            }, // re_a
            Instr::Lw {
                rt: reg(3),
                rs: reg(16),
                off: im_off,
            }, // im_a
            Instr::Sub {
                rd: reg(6),
                rs: reg(4),
                rt: reg(2),
            },
            Instr::Sw {
                rt: reg(6),
                rs: reg(18),
                off: 0,
            },
            Instr::Sub {
                rd: reg(6),
                rs: reg(3),
                rt: reg(24),
            },
            Instr::Sw {
                rt: reg(6),
                rs: reg(18),
                off: im_off,
            },
            Instr::Add {
                rd: reg(4),
                rs: reg(4),
                rt: reg(2),
            },
            Instr::Sw {
                rt: reg(4),
                rs: reg(16),
                off: 0,
            },
            Instr::Add {
                rd: reg(3),
                rs: reg(3),
                rt: reg(24),
            },
            Instr::Sw {
                rt: reg(3),
                rs: reg(16),
                off: im_off,
            },
            Instr::Addi {
                rt: reg(16),
                rs: reg(16),
                imm: 4,
            },
            Instr::Addi {
                rt: reg(18),
                rs: reg(18),
                imm: 4,
            },
            Instr::Add {
                rd: reg(8),
                rs: reg(8),
                rt: reg(19),
            }, // twiddle += tstep
        ];
        let k_loop = Node::Loop(LoopNode {
            trips: Trips::Reg(reg(7)),
            index: None,
            counter: reg(13),
            body: vec![Node::Code(k_body)],
        });
        let g_loop = Node::Loop(LoopNode {
            trips: Trips::Reg(reg(9)),
            index: None,
            counter: reg(12),
            body: vec![
                Node::code([
                    Instr::Add {
                        rd: reg(16),
                        rs: reg(5),
                        rt: Reg::ZERO,
                    },
                    Instr::Add {
                        rd: reg(18),
                        rs: reg(5),
                        rt: reg(17),
                    },
                    Instr::Add {
                        rd: reg(8),
                        rs: reg(21),
                        rt: Reg::ZERO,
                    },
                ]),
                k_loop,
                Node::code([
                    Instr::Lw {
                        rt: reg(6),
                        rs: reg(23),
                        off: 12,
                    }, // group stride
                    Instr::Add {
                        rd: reg(5),
                        rs: reg(5),
                        rt: reg(6),
                    },
                ]),
            ],
        });
        let s_loop = Node::Loop(LoopNode {
            trips: Trips::Const(STAGES as u32),
            index: Some(IndexSpec {
                reg: reg(23),
                init: p_addr as i32,
                step: 16,
            }),
            counter: reg(11),
            body: vec![
                Node::code([
                    Instr::Lw {
                        rt: reg(17),
                        rs: reg(23),
                        off: 0,
                    }, // half_bytes
                    Instr::Lw {
                        rt: reg(9),
                        rs: reg(23),
                        off: 4,
                    }, // groups
                    Instr::Lw {
                        rt: reg(7),
                        rs: reg(23),
                        off: 0,
                    }, // half = k trips…
                    Instr::Srl {
                        rd: reg(7),
                        rt: reg(7),
                        sh: 2,
                    }, // …in iterations
                    Instr::Lw {
                        rt: reg(19),
                        rs: reg(23),
                        off: 8,
                    }, // tstep_bytes
                    Instr::Add {
                        rd: reg(5),
                        rs: reg(20),
                        rt: Reg::ZERO,
                    }, // base ptr
                ]),
                g_loop,
            ],
        });
        let ir = LoopIr {
            name: "fft16".into(),
            nodes: vec![s_loop],
        };
        let expect = Expectation {
            mem_words: vec![(re_addr, re_u), (im_addr, im_u)],
            regs: vec![],
        };
        (ir, expect)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{fig2_targets, run_kernel};

    #[test]
    fn crc32_correct_on_all_targets() {
        for t in fig2_targets() {
            let b = build_crc32(&t).unwrap();
            let r = run_kernel(&b, 2_000_000).unwrap();
            assert!(r.is_correct(), "{t}: {:?} {:?}", r.mismatches, r.violations);
        }
    }

    #[test]
    fn bubble_sort_correct_on_all_targets() {
        for t in fig2_targets() {
            let b = build_bubble_sort(&t).unwrap();
            let r = run_kernel(&b, 2_000_000).unwrap();
            assert!(r.is_correct(), "{t}: {:?} {:?}", r.mismatches, r.violations);
        }
    }

    #[test]
    fn fft16_correct_on_all_targets() {
        for t in fig2_targets() {
            let b = build_fft16(&t).unwrap();
            let r = run_kernel(&b, 2_000_000).unwrap();
            assert!(r.is_correct(), "{t}: {:?} {:?}", r.mismatches, r.violations);
        }
    }

    #[test]
    fn crc32_hwloop_beats_baseline_clearly() {
        // the bit loop has no live index: dbnz replaces two instructions
        let b = run_kernel(&build_crc32(&Target::Baseline).unwrap(), 1_000_000)
            .unwrap()
            .stats
            .cycles;
        let h = run_kernel(&build_crc32(&Target::HwLoop).unwrap(), 1_000_000)
            .unwrap()
            .stats
            .cycles;
        assert!(h < b);
    }
}
