//! Vector kernels (XiRisc-validation-suite style): multiply-accumulate
//! and maximum search.

use crate::common::{build_kernel, BuildError, BuiltKernel, Expectation, Xorshift};
use zolc_ir::{Cond, IndexSpec, LoopIr, LoopNode, Node, Target, Trips};
use zolc_isa::{reg, Asm, Instr, Reg};

/// Dot product with energy accumulation: `acc = Σ a[i]·b[i]`,
/// `chk = Σ a[i]` over 64-element vectors.
///
/// The ZOLC index register is the pointer walking `a`; `b` sits at a fixed
/// offset so one moving pointer serves both streams.
pub fn build_vec_mac(target: &Target) -> Result<BuiltKernel, BuildError> {
    const N: usize = 64;
    build_kernel("vec_mac", target, |asm: &mut Asm| {
        let mut rng = Xorshift::new(0x1001);
        let a: Vec<i32> = (0..N).map(|_| rng.signed(100)).collect();
        let b: Vec<i32> = (0..N).map(|_| rng.signed(100)).collect();
        let a_addr = asm.words(&a);
        let b_addr = asm.words(&b);
        assert_eq!(b_addr - a_addr, 4 * N as u32);

        // reference
        let mut acc: i32 = 0;
        let mut chk: i32 = 0;
        for i in 0..N {
            acc = acc.wrapping_add(a[i].wrapping_mul(b[i]));
            chk = chk.wrapping_add(a[i]);
        }

        let ir = LoopIr {
            name: "vec_mac".into(),
            nodes: vec![Node::Loop(LoopNode {
                trips: Trips::Const(N as u32),
                index: Some(IndexSpec {
                    reg: reg(20),
                    init: a_addr as i32,
                    step: 4,
                }),
                counter: reg(11),
                body: vec![Node::code([
                    Instr::Lw {
                        rt: reg(4),
                        rs: reg(20),
                        off: 0,
                    },
                    Instr::Lw {
                        rt: reg(5),
                        rs: reg(20),
                        off: (4 * N) as i16,
                    },
                    Instr::Mul {
                        rd: reg(6),
                        rs: reg(4),
                        rt: reg(5),
                    },
                    Instr::Add {
                        rd: reg(2),
                        rs: reg(2),
                        rt: reg(6),
                    },
                    Instr::Add {
                        rd: reg(3),
                        rs: reg(3),
                        rt: reg(4),
                    },
                ])],
            })],
        };
        let expect = Expectation {
            mem_words: vec![],
            regs: vec![(reg(2), acc as u32), (reg(3), chk as u32)],
        };
        (ir, expect)
    })
}

/// Maximum search with argument tracking: finds the maximum of 80 words,
/// the address of its first occurrence, and a running-maximum checksum.
pub fn build_vec_max(target: &Target) -> Result<BuiltKernel, BuildError> {
    const N: usize = 80;
    build_kernel("vec_max", target, |asm: &mut Asm| {
        let mut rng = Xorshift::new(0x1002);
        let a: Vec<i32> = (0..N).map(|_| rng.signed(5000)).collect();
        let a_addr = asm.words(&a);

        // setup: r2 = i32::MIN (current max)
        asm.li(reg(2), i32::MIN);

        // reference
        let mut max = i32::MIN;
        let mut argp: u32 = 0;
        let mut chk: i32 = 0;
        for (i, &x) in a.iter().enumerate() {
            if x > max {
                max = x;
                argp = a_addr + 4 * i as u32;
            }
            chk = chk.wrapping_add(max);
        }

        let ir = LoopIr {
            name: "vec_max".into(),
            nodes: vec![Node::Loop(LoopNode {
                trips: Trips::Const(N as u32),
                index: Some(IndexSpec {
                    reg: reg(20),
                    init: a_addr as i32,
                    step: 4,
                }),
                counter: reg(11),
                body: vec![
                    Node::code([
                        Instr::Lw {
                            rt: reg(4),
                            rs: reg(20),
                            off: 0,
                        },
                        Instr::Slt {
                            rd: reg(5),
                            rs: reg(2),
                            rt: reg(4),
                        },
                    ]),
                    Node::If {
                        cond: Cond::Ne(reg(5), Reg::ZERO),
                        then: vec![Node::code([
                            Instr::Add {
                                rd: reg(2),
                                rs: reg(4),
                                rt: Reg::ZERO,
                            },
                            Instr::Add {
                                rd: reg(3),
                                rs: reg(20),
                                rt: Reg::ZERO,
                            },
                        ])],
                        els: vec![],
                    },
                    Node::code([Instr::Add {
                        rd: reg(6),
                        rs: reg(6),
                        rt: reg(2),
                    }]),
                ],
            })],
        };
        let expect = Expectation {
            mem_words: vec![],
            regs: vec![(reg(2), max as u32), (reg(3), argp), (reg(6), chk as u32)],
        };
        (ir, expect)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{fig2_targets, run_kernel};

    #[test]
    fn vec_mac_correct_on_all_targets() {
        for t in fig2_targets() {
            let b = build_vec_mac(&t).unwrap();
            let r = run_kernel(&b, 1_000_000).unwrap();
            assert!(r.is_correct(), "{t}: {:?} {:?}", r.mismatches, r.violations);
        }
    }

    #[test]
    fn vec_max_correct_on_all_targets() {
        for t in fig2_targets() {
            let b = build_vec_max(&t).unwrap();
            let r = run_kernel(&b, 1_000_000).unwrap();
            assert!(r.is_correct(), "{t}: {:?} {:?}", r.mismatches, r.violations);
        }
    }

    #[test]
    fn vec_mac_zolc_is_fastest() {
        let cycles: Vec<u64> = fig2_targets()
            .iter()
            .map(|t| {
                run_kernel(&build_vec_mac(t).unwrap(), 1_000_000)
                    .unwrap()
                    .stats
                    .cycles
            })
            .collect();
        assert!(cycles[2] < cycles[1] && cycles[1] < cycles[0], "{cycles:?}");
    }
}
