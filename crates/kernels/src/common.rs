//! Shared infrastructure for building and running benchmark kernels.

use std::fmt;
use std::sync::Arc;
use zolc_core::{Zolc, ZolcConfig};
use zolc_ir::{lower_into, LoopIr, LowerError, LoweredInfo, Target};
use zolc_isa::{Asm, AsmError, Instr, Reg};
use zolc_sim::{run_session, CompiledProgram, ExecutorKind, NullEngine, RunError, Stats};

/// Expected architectural results of a kernel run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Expectation {
    /// `(address, expected words)` regions compared after the run.
    pub mem_words: Vec<(u32, Vec<u32>)>,
    /// `(register, expected value)` pairs compared after the run.
    pub regs: Vec<(Reg, u32)>,
}

/// A kernel lowered for one target, ready to run.
#[derive(Debug, Clone)]
pub struct BuiltKernel {
    /// Kernel name.
    pub name: String,
    /// The linked program (self-initializing for ZOLC targets),
    /// compiled once and `Arc`-shared: every [`BuiltKernel::run`] opens
    /// a fresh session over the same predecoded text and block cache.
    pub program: Arc<CompiledProgram>,
    /// The target it was lowered for.
    pub target: Target,
    /// Expected results (from the Rust reference model).
    pub expect: Expectation,
    /// Lowering byproducts (table image, init length, notes).
    pub info: LoweredInfo,
}

/// Errors building a kernel.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum BuildError {
    /// The IR did not lower for this target.
    Lower(LowerError),
    /// Assembly/linking failed.
    Asm(AsmError),
    /// The automatic retargeting pipeline rejected the baseline binary.
    Retarget(zolc_cfg::RetargetError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Lower(e) => write!(f, "lowering failed: {e}"),
            BuildError::Asm(e) => write!(f, "assembly failed: {e}"),
            BuildError::Retarget(e) => write!(f, "retargeting failed: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Lower(e) => Some(e),
            BuildError::Asm(e) => Some(e),
            BuildError::Retarget(e) => Some(e),
        }
    }
}

impl From<LowerError> for BuildError {
    fn from(e: LowerError) -> Self {
        BuildError::Lower(e)
    }
}

impl From<AsmError> for BuildError {
    fn from(e: AsmError) -> Self {
        BuildError::Asm(e)
    }
}

impl From<zolc_cfg::RetargetError> for BuildError {
    fn from(e: zolc_cfg::RetargetError) -> Self {
        BuildError::Retarget(e)
    }
}

/// Builds a kernel: `f` writes the data segment and setup code into the
/// assembler and returns the loop structure plus the reference
/// expectation; the loop structure is then lowered for `target`.
pub(crate) fn build_kernel(
    name: &str,
    target: &Target,
    f: impl FnOnce(&mut Asm) -> (LoopIr, Expectation),
) -> Result<BuiltKernel, BuildError> {
    let mut asm = Asm::new();
    let (ir, expect) = f(&mut asm);
    let info = lower_into(&mut asm, &ir, target)?;
    asm.emit(Instr::Halt);
    let program = CompiledProgram::compile(asm.finish()?);
    Ok(BuiltKernel {
        name: name.to_owned(),
        program,
        target: target.clone(),
        expect,
        info,
    })
}

/// Outcome of running a built kernel.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// Pipeline statistics (cycles are the paper's metric).
    pub stats: Stats,
    /// Differences from the reference expectation (empty = correct).
    pub mismatches: Vec<String>,
    /// ZOLC consistency violations (empty = correct; always empty for
    /// non-ZOLC targets).
    pub violations: Vec<String>,
}

impl KernelRun {
    /// Whether the run matched the reference bit-exactly and the
    /// controller stayed consistent.
    pub fn is_correct(&self) -> bool {
        self.mismatches.is_empty() && self.violations.is_empty()
    }
}

impl BuiltKernel {
    /// Runs the kernel on the chosen executor and checks it against its
    /// reference expectation — a fresh session over the kernel's shared
    /// [`CompiledProgram`], so repeated runs (and concurrent ones) pay
    /// the compile cost once.
    ///
    /// The correct loop engine is attached automatically (the [`Zolc`]
    /// controller for ZOLC targets, [`NullEngine`] otherwise). `fuel`
    /// bounds retired instructions with the same meaning on every
    /// executor (see [`zolc_sim::Executor::run`]). On the functional
    /// tiers ([`ExecutorKind::Functional`] / [`ExecutorKind::Compiled`])
    /// the returned statistics carry no cycle counts but identical
    /// architectural event counts.
    ///
    /// # Errors
    ///
    /// Propagates simulator [`RunError`]s (fuel exhausted, memory
    /// fault).
    pub fn run(&self, fuel: u64, executor: ExecutorKind) -> Result<KernelRun, RunError> {
        let (finished, violations) = match &self.target {
            Target::Zolc(cfg) => {
                let mut z = Zolc::new(*cfg);
                let fin = run_session(executor, &self.program, &mut z, fuel)?;
                (fin, z.violations().to_vec())
            }
            _ => {
                let fin = run_session(executor, &self.program, &mut NullEngine, fuel)?;
                (fin, Vec::new())
            }
        };
        let mut mismatches = Vec::new();
        for (addr, words) in &self.expect.mem_words {
            let got = finished
                .cpu
                .mem()
                .read_words(*addr, words.len())
                .map_err(RunError::from)?;
            for (k, (g, w)) in got.iter().zip(words).enumerate() {
                if g != w && mismatches.len() < 8 {
                    mismatches.push(format!(
                        "{}/{}: mem[{:#x}] = {:#x}, expected {:#x}",
                        self.name,
                        self.target,
                        addr + 4 * k as u32,
                        g,
                        w
                    ));
                }
            }
        }
        for (r, v) in &self.expect.regs {
            let got = finished.cpu.regs().read(*r);
            if got != *v {
                mismatches.push(format!(
                    "{}/{}: {r} = {got:#x}, expected {v:#x}",
                    self.name, self.target
                ));
            }
        }
        Ok(KernelRun {
            stats: finished.stats,
            mismatches,
            violations,
        })
    }
}

/// Runs a built kernel on the cycle-accurate simulator and checks it
/// against its reference expectation.
///
/// Shorthand for [`BuiltKernel::run`] on [`ExecutorKind::CycleAccurate`];
/// use that directly to pick one of the fast functional tiers when
/// cycle counts are not needed.
///
/// # Errors
///
/// Propagates simulator [`RunError`]s (fuel exhausted, memory fault).
pub fn run_kernel(built: &BuiltKernel, fuel: u64) -> Result<KernelRun, RunError> {
    built.run(fuel, ExecutorKind::CycleAccurate)
}

/// The standard targets of the paper's Fig. 2 comparison.
pub fn fig2_targets() -> Vec<Target> {
    vec![
        Target::Baseline,
        Target::HwLoop,
        Target::Zolc(ZolcConfig::lite()),
    ]
}

/// A deterministic xorshift PRNG so kernel inputs never depend on crate
/// versions or platform (the `rand` crate is used only through this).
#[derive(Debug, Clone)]
pub struct Xorshift {
    state: u64,
}

impl Xorshift {
    /// Creates a generator from a nonzero seed.
    pub fn new(seed: u64) -> Xorshift {
        Xorshift { state: seed.max(1) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// A value in `0..bound`.
    pub fn below(&mut self, bound: u32) -> u32 {
        (self.next_u64() % u64::from(bound)) as u32
    }

    /// A signed value in `-range..=range`.
    pub fn signed(&mut self, range: u32) -> i32 {
        self.below(2 * range + 1) as i32 - range as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_executors_agree_on_a_kernel() {
        for target in fig2_targets() {
            let built = crate::build_vec_mac(&target).expect("builds");
            let slow = built.run(10_000_000, ExecutorKind::CycleAccurate).unwrap();
            assert!(slow.is_correct(), "{target}: {:?}", slow.mismatches);
            assert!(slow.stats.cycles > 0);
            for kind in [
                ExecutorKind::Functional,
                ExecutorKind::Compiled,
                ExecutorKind::Nest,
            ] {
                let fast = built.run(10_000_000, kind).unwrap();
                assert!(fast.is_correct(), "{target}/{kind}: {:?}", fast.mismatches);
                assert_eq!(slow.stats.retired, fast.stats.retired, "{target}/{kind}");
                assert_eq!(fast.stats.cycles, 0);
            }
        }
    }

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = Xorshift::new(42);
        let mut b = Xorshift::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xorshift::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn xorshift_bounds_respected() {
        let mut r = Xorshift::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let s = r.signed(5);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn zero_seed_is_fixed_up() {
        let mut r = Xorshift::new(0);
        assert_ne!(r.next_u64(), 0);
    }
}
