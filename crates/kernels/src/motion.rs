//! Motion-estimation kernels — the workloads the paper's evaluation names
//! explicitly ("software implementations of motion estimation kernels").
//!
//! * [`build_me_fs`] — exhaustive full search over a ±4 window;
//! * [`build_me_tss`] — three-step search;
//! * [`build_me_fs_early`] — full search with early SAD termination
//!   (exercises multiple-exit loops: exit records on ZOLCfull, software
//!   fixup on ZOLClite) — ablation kernel, not part of the Fig. 2 twelve;
//! * [`build_find_first`] — a single-loop early-exit search usable even on
//!   uZOLC — ablation kernel.

use crate::common::{build_kernel, BuildError, BuiltKernel, Expectation, Xorshift};
use zolc_ir::{Cond, IndexSpec, LoopIr, LoopNode, Node, Target, Trips};
use zolc_isa::{reg, Asm, Instr, Reg};

const REFW: usize = 24; // reference frame is 24x24 bytes
const BLK: usize = 8; // the current block is 8x8 bytes

/// Generates a reference frame and a current block that actually appears
/// (noisily) inside it, so the searches find meaningful minima.
fn gen_frames(rng: &mut Xorshift) -> (Vec<u8>, Vec<u8>) {
    let reff: Vec<u8> = (0..REFW * REFW).map(|_| rng.below(256) as u8).collect();
    // current block = a patch at (5, 7) plus mild noise
    let mut cur = vec![0u8; BLK * BLK];
    for y in 0..BLK {
        for x in 0..BLK {
            let v = reff[(y + 5) * REFW + x + 7];
            cur[y * BLK + x] = v.wrapping_add((rng.below(7) as u8).wrapping_sub(3));
        }
    }
    (reff, cur)
}

fn sad_at(reff: &[u8], cur: &[u8], dy: usize, dx: usize) -> u32 {
    let mut sad = 0u32;
    for y in 0..BLK {
        for x in 0..BLK {
            let c = i32::from(cur[y * BLK + x]);
            let r = i32::from(reff[(dy + y) * REFW + dx + x]);
            sad = sad.wrapping_add((c - r).unsigned_abs());
        }
    }
    sad
}

/// The shared SAD inner pair: `by` (rows) × `bx` (pixels), accumulating
/// into `r6`, walking `r7` (current block) and `r8` (reference window).
fn sad_loops() -> Node {
    let bx_loop = Node::Loop(LoopNode {
        trips: Trips::Const(BLK as u32),
        index: None,
        counter: reg(13),
        body: vec![Node::code([
            Instr::Lbu {
                rt: reg(4),
                rs: reg(7),
                off: 0,
            },
            Instr::Lbu {
                rt: reg(16),
                rs: reg(8),
                off: 0,
            },
            Instr::Addi {
                rt: reg(7),
                rs: reg(7),
                imm: 1,
            },
            Instr::Addi {
                rt: reg(8),
                rs: reg(8),
                imm: 1,
            },
            Instr::Sub {
                rd: reg(4),
                rs: reg(4),
                rt: reg(16),
            },
            Instr::Sra {
                rd: reg(16),
                rt: reg(4),
                sh: 31,
            },
            Instr::Xor {
                rd: reg(4),
                rs: reg(4),
                rt: reg(16),
            },
            Instr::Sub {
                rd: reg(4),
                rs: reg(4),
                rt: reg(16),
            },
            Instr::Add {
                rd: reg(6),
                rs: reg(6),
                rt: reg(4),
            },
        ])],
    });
    Node::Loop(LoopNode {
        trips: Trips::Const(BLK as u32),
        index: None,
        counter: reg(12),
        body: vec![
            bx_loop,
            Node::code([Instr::Addi {
                rt: reg(8),
                rs: reg(8),
                imm: (REFW - BLK) as i16,
            }]),
        ],
    })
}

/// Full-search motion estimation: 9×9 candidate displacements, 8×8 SAD —
/// a four-deep imperfect nest with a compare-and-update tail.
pub fn build_me_fs(target: &Target) -> Result<BuiltKernel, BuildError> {
    build_me_fs_impl("me_fs", false, target)
}

/// Full search with early SAD termination: once a candidate's partial SAD
/// exceeds the current best, the row loop is abandoned (`break_if`).
pub fn build_me_fs_early(target: &Target) -> Result<BuiltKernel, BuildError> {
    build_me_fs_impl("me_fs_early", true, target)
}

fn build_me_fs_impl(name: &str, early: bool, target: &Target) -> Result<BuiltKernel, BuildError> {
    const RANGE: usize = 9; // displacements 0..=8 in each axis
    build_kernel(name, target, |asm: &mut Asm| {
        let mut rng = Xorshift::new(0x5001);
        let (reff, cur) = gen_frames(&mut rng);
        let r_addr = asm.bytes(&reff);
        let c_addr = asm.bytes(&cur);
        asm.li(reg(21), c_addr as i32); // current-block base
        asm.li(reg(2), i32::MAX); // best SAD

        // reference (models the early exit exactly when enabled; `best`
        // is i32 because the kernel compares with the signed `slt`)
        let mut best: i32 = i32::MAX;
        let mut best_id = 0u32;
        let mut chk = 0u32;
        {
            let mut id = 0u32;
            for dy in 0..RANGE {
                for dx in 0..RANGE {
                    id += 1;
                    let sad = if early {
                        // row-wise accumulation with abandon-on-worse
                        let mut sad = 0u32;
                        for y in 0..BLK {
                            for x in 0..BLK {
                                let c = i32::from(cur[y * BLK + x]);
                                let r = i32::from(reff[(dy + y) * REFW + dx + x]);
                                sad = sad.wrapping_add((c - r).unsigned_abs());
                            }
                            if (sad as i32) >= best && y < BLK - 1 {
                                break;
                            }
                        }
                        sad
                    } else {
                        sad_at(&reff, &cur, dy, dx)
                    };
                    if (sad as i32) < best {
                        best = sad as i32;
                        best_id = id;
                    }
                    chk = chk.wrapping_add(sad);
                }
            }
        }

        // by-loop with optional early termination
        let by_loop = if early {
            let Node::Loop(mut by) = sad_loops() else {
                unreachable!()
            };
            // after each row: if sad >= best, abandon the candidate
            by.body.push(Node::code([Instr::Slt {
                rd: reg(16),
                rs: reg(6),
                rt: reg(2),
            }]));
            by.body.push(Node::BreakIf {
                cond: Cond::Eq(reg(16), Reg::ZERO),
                levels: 1,
            });
            // tail so the task end is unique and unconditional
            by.body.push(Node::code([Instr::Add {
                rd: reg(17),
                rs: reg(17),
                rt: Reg::ZERO,
            }]));
            Node::Loop(by)
        } else {
            sad_loops()
        };

        let dx_loop = Node::Loop(LoopNode {
            trips: Trips::Const(RANGE as u32),
            index: Some(IndexSpec {
                reg: reg(22),
                init: 0,
                step: 1,
            }),
            counter: reg(14),
            body: vec![
                Node::code([
                    Instr::Addi {
                        rt: reg(17),
                        rs: reg(17),
                        imm: 1,
                    }, // candidate id
                    Instr::Add {
                        rd: reg(6),
                        rs: Reg::ZERO,
                        rt: Reg::ZERO,
                    }, // sad
                    Instr::Add {
                        rd: reg(8),
                        rs: reg(23),
                        rt: reg(22),
                    }, // ref ptr
                    Instr::Add {
                        rd: reg(7),
                        rs: reg(21),
                        rt: Reg::ZERO,
                    }, // cur ptr
                ]),
                by_loop,
                Node::code([Instr::Slt {
                    rd: reg(16),
                    rs: reg(6),
                    rt: reg(2),
                }]),
                Node::If {
                    cond: Cond::Ne(reg(16), Reg::ZERO),
                    then: vec![Node::code([
                        Instr::Add {
                            rd: reg(2),
                            rs: reg(6),
                            rt: Reg::ZERO,
                        },
                        Instr::Add {
                            rd: reg(3),
                            rs: reg(17),
                            rt: Reg::ZERO,
                        },
                    ])],
                    els: vec![],
                },
                Node::code([Instr::Add {
                    rd: reg(18),
                    rs: reg(18),
                    rt: reg(6),
                }]),
            ],
        });
        let ir = LoopIr {
            name: name.into(),
            nodes: vec![Node::Loop(LoopNode {
                trips: Trips::Const(RANGE as u32),
                index: Some(IndexSpec {
                    reg: reg(23),
                    init: r_addr as i32,
                    step: REFW as i32,
                }),
                counter: reg(11),
                body: vec![dx_loop],
            })],
        };
        let expect = Expectation {
            mem_words: vec![],
            regs: vec![(reg(2), best as u32), (reg(3), best_id), (reg(18), chk)],
        };
        (ir, expect)
    })
}

/// Three-step search: steps 4, 2, 1; nine candidates around a moving
/// center per step — four nested loops with table-driven displacements.
pub fn build_me_tss(target: &Target) -> Result<BuiltKernel, BuildError> {
    build_kernel("me_tss", target, |asm: &mut Asm| {
        let mut rng = Xorshift::new(0x5002);
        let (reff, cur) = gen_frames(&mut rng);
        let r_addr = asm.bytes(&reff);
        let c_addr = asm.bytes(&cur);
        asm.align_data(4);
        // candidate offsets (dy, dx) pairs
        let offsets: Vec<i32> = vec![0, 0, -1, -1, -1, 0, -1, 1, 0, -1, 0, 1, 1, -1, 1, 0, 1, 1];
        let off_addr = asm.words(&offsets);
        let steps: Vec<i32> = vec![4, 2, 1];
        let steps_addr = asm.words(&steps);

        asm.li(reg(21), c_addr as i32); // current-block base
        asm.li(reg(24), r_addr as i32); // reference base
        asm.li(reg(10), REFW as i32); // row stride multiplier
        asm.li(reg(19), 8); // center y
        asm.li(reg(17), 8); // center x

        // reference
        let (mut cy, mut cx) = (8i32, 8i32);
        let mut chk = 0u32;
        let mut last_best = 0u32;
        for &step in &steps {
            let mut best = i32::MAX;
            let (mut bdy, mut bdx) = (cy, cx);
            for m in 0..9 {
                let cand_y = cy + offsets[2 * m] * step;
                let cand_x = cx + offsets[2 * m + 1] * step;
                let sad = sad_at(&reff, &cur, cand_y as usize, cand_x as usize) as i32;
                if sad < best {
                    best = sad;
                    bdy = cand_y;
                    bdx = cand_x;
                }
                chk = chk.wrapping_add(sad as u32);
            }
            cy = bdy;
            cx = bdx;
            last_best = best as u32;
        }

        let m_loop = Node::Loop(LoopNode {
            trips: Trips::Const(9),
            index: Some(IndexSpec {
                reg: reg(22),
                init: off_addr as i32,
                step: 8,
            }),
            counter: reg(14),
            body: vec![
                Node::code([
                    Instr::Lw {
                        rt: reg(4),
                        rs: reg(22),
                        off: 0,
                    }, // dy
                    Instr::Lw {
                        rt: reg(5),
                        rs: reg(22),
                        off: 4,
                    }, // dx
                    Instr::Lw {
                        rt: reg(16),
                        rs: reg(23),
                        off: 0,
                    }, // step
                    Instr::Mul {
                        rd: reg(4),
                        rs: reg(4),
                        rt: reg(16),
                    },
                    Instr::Mul {
                        rd: reg(5),
                        rs: reg(5),
                        rt: reg(16),
                    },
                    // candidate coordinates live in r27/r28: the SAD loops
                    // reuse r4/r5 as scratch
                    Instr::Add {
                        rd: reg(27),
                        rs: reg(4),
                        rt: reg(19),
                    }, // cand_y
                    Instr::Add {
                        rd: reg(28),
                        rs: reg(5),
                        rt: reg(17),
                    }, // cand_x
                    Instr::Mul {
                        rd: reg(6),
                        rs: reg(27),
                        rt: reg(10),
                    },
                    Instr::Add {
                        rd: reg(6),
                        rs: reg(6),
                        rt: reg(28),
                    },
                    Instr::Add {
                        rd: reg(8),
                        rs: reg(24),
                        rt: reg(6),
                    }, // ref ptr
                    Instr::Add {
                        rd: reg(7),
                        rs: reg(21),
                        rt: Reg::ZERO,
                    },
                    Instr::Add {
                        rd: reg(6),
                        rs: Reg::ZERO,
                        rt: Reg::ZERO,
                    }, // sad
                ]),
                sad_loops(),
                Node::code([Instr::Slt {
                    rd: reg(16),
                    rs: reg(6),
                    rt: reg(2),
                }]),
                Node::If {
                    cond: Cond::Ne(reg(16), Reg::ZERO),
                    then: vec![Node::code([
                        Instr::Add {
                            rd: reg(2),
                            rs: reg(6),
                            rt: Reg::ZERO,
                        }, // best
                        Instr::Add {
                            rd: reg(25),
                            rs: reg(27),
                            rt: Reg::ZERO,
                        }, // best y
                        Instr::Add {
                            rd: reg(26),
                            rs: reg(28),
                            rt: Reg::ZERO,
                        }, // best x
                    ])],
                    els: vec![],
                },
                Node::code([Instr::Add {
                    rd: reg(18),
                    rs: reg(18),
                    rt: reg(6),
                }]),
            ],
        });
        let s_loop = Node::Loop(LoopNode {
            trips: Trips::Const(3),
            index: Some(IndexSpec {
                reg: reg(23),
                init: steps_addr as i32,
                step: 4,
            }),
            counter: reg(11),
            body: vec![
                Node::code([
                    // best = +inf for this step
                    Instr::Lui {
                        rt: reg(2),
                        imm: 0x7fff,
                    },
                    Instr::Ori {
                        rt: reg(2),
                        rs: reg(2),
                        imm: 0xffff,
                    },
                ]),
                m_loop,
                Node::code([
                    Instr::Add {
                        rd: reg(19),
                        rs: reg(25),
                        rt: Reg::ZERO,
                    }, // cy
                    Instr::Add {
                        rd: reg(17),
                        rs: reg(26),
                        rt: Reg::ZERO,
                    }, // cx
                ]),
            ],
        });
        let ir = LoopIr {
            name: "me_tss".into(),
            nodes: vec![s_loop],
        };
        let expect = Expectation {
            mem_words: vec![],
            regs: vec![
                (reg(19), cy as u32),
                (reg(17), cx as u32),
                (reg(2), last_best),
                (reg(18), chk),
            ],
        };
        (ir, expect)
    })
}

/// Single-loop early-exit search: the first element ≥ threshold stops the
/// scan. Usable on every configuration including uZOLC (ablation kernel).
pub fn build_find_first(target: &Target) -> Result<BuiltKernel, BuildError> {
    const N: usize = 128;
    build_kernel("find_first", target, |asm: &mut Asm| {
        let mut rng = Xorshift::new(0x5003);
        let mut a: Vec<i32> = (0..N).map(|_| rng.signed(900)).collect();
        a[93] = 2000; // guaranteed hit near the end
        let a_addr = asm.words(&a);
        asm.li(reg(10), 1000); // threshold

        // reference
        let mut found: u32 = 0;
        let mut scanned: u32 = 0;
        for (i, &x) in a.iter().enumerate() {
            scanned += 1;
            if x >= 1000 {
                found = a_addr + 4 * i as u32;
                break;
            }
        }

        let ir = LoopIr {
            name: "find_first".into(),
            nodes: vec![Node::Loop(LoopNode {
                trips: Trips::Const(N as u32),
                index: Some(IndexSpec {
                    reg: reg(20),
                    init: a_addr as i32,
                    step: 4,
                }),
                counter: reg(11),
                body: vec![
                    Node::code([
                        Instr::Addi {
                            rt: reg(3),
                            rs: reg(3),
                            imm: 1,
                        }, // scanned
                        Instr::Lw {
                            rt: reg(4),
                            rs: reg(20),
                            off: 0,
                        },
                        Instr::Slt {
                            rd: reg(5),
                            rs: reg(4),
                            rt: reg(10),
                        },
                        Instr::Add {
                            rd: reg(2),
                            rs: reg(20),
                            rt: Reg::ZERO,
                        },
                    ]),
                    Node::BreakIf {
                        cond: Cond::Eq(reg(5), Reg::ZERO),
                        levels: 1,
                    },
                    Node::code([Instr::Add {
                        rd: reg(2),
                        rs: Reg::ZERO,
                        rt: Reg::ZERO,
                    }]),
                ],
            })],
        };
        let expect = Expectation {
            mem_words: vec![],
            regs: vec![(reg(2), found), (reg(3), scanned)],
        };
        (ir, expect)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{fig2_targets, run_kernel};
    use zolc_core::ZolcConfig;

    #[test]
    fn me_fs_correct_on_all_targets() {
        for t in fig2_targets() {
            let b = build_me_fs(&t).unwrap();
            let r = run_kernel(&b, 5_000_000).unwrap();
            assert!(r.is_correct(), "{t}: {:?} {:?}", r.mismatches, r.violations);
        }
    }

    #[test]
    fn me_tss_correct_on_all_targets() {
        for t in fig2_targets() {
            let b = build_me_tss(&t).unwrap();
            let r = run_kernel(&b, 5_000_000).unwrap();
            assert!(r.is_correct(), "{t}: {:?} {:?}", r.mismatches, r.violations);
        }
    }

    #[test]
    fn me_fs_early_correct_on_full_lite_and_sw() {
        for t in [
            Target::Baseline,
            Target::HwLoop,
            Target::Zolc(ZolcConfig::full()),
            Target::Zolc(ZolcConfig::lite()),
        ] {
            let b = build_me_fs_early(&t).unwrap();
            let r = run_kernel(&b, 5_000_000).unwrap();
            assert!(r.is_correct(), "{t}: {:?} {:?}", r.mismatches, r.violations);
        }
    }

    #[test]
    fn me_fs_early_terminates_faster_than_plain_on_full() {
        let plain = run_kernel(
            &build_me_fs(&Target::Zolc(ZolcConfig::full())).unwrap(),
            5_000_000,
        )
        .unwrap();
        let early = run_kernel(
            &build_me_fs_early(&Target::Zolc(ZolcConfig::full())).unwrap(),
            5_000_000,
        )
        .unwrap();
        assert!(early.stats.cycles < plain.stats.cycles);
    }

    #[test]
    fn find_first_works_even_on_micro() {
        for t in [
            Target::Baseline,
            Target::HwLoop,
            Target::Zolc(ZolcConfig::micro()),
            Target::Zolc(ZolcConfig::lite()),
            Target::Zolc(ZolcConfig::full()),
        ] {
            let b = build_find_first(&t).unwrap();
            let r = run_kernel(&b, 1_000_000).unwrap();
            assert!(r.is_correct(), "{t}: {:?} {:?}", r.mismatches, r.violations);
        }
    }
}
