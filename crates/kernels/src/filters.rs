//! Filter kernels: FIR and a cascaded IIR biquad (fixed-point).

use crate::common::{build_kernel, BuildError, BuiltKernel, Expectation, Xorshift};
use zolc_ir::{IndexSpec, LoopIr, LoopNode, Node, Target, Trips};
use zolc_isa::{reg, Asm, Instr, Reg};

/// 16-tap FIR over 64 output samples: `y[n] = Σ h[k]·x[n+k]`.
///
/// Outer loop walks the input window (ZOLC index = `&x[n]`), inner loop
/// walks the coefficients (ZOLC index = `&h[k]`); the inner body also
/// advances a plain window pointer.
pub fn build_fir(target: &Target) -> Result<BuiltKernel, BuildError> {
    const NSAMP: usize = 64;
    const NTAPS: usize = 16;
    build_kernel("fir", target, |asm: &mut Asm| {
        let mut rng = Xorshift::new(0x2001);
        let x: Vec<i32> = (0..NSAMP + NTAPS).map(|_| rng.signed(1000)).collect();
        let h: Vec<i32> = (0..NTAPS).map(|_| rng.signed(64)).collect();
        let x_addr = asm.words(&x);
        let h_addr = asm.words(&h);
        let y_addr = asm.zeroed_words(NSAMP);

        // setup: r9 = output pointer
        asm.li(reg(9), y_addr as i32);

        // reference
        let y: Vec<u32> = (0..NSAMP)
            .map(|n| {
                let mut acc: i32 = 0;
                for k in 0..NTAPS {
                    acc = acc.wrapping_add(h[k].wrapping_mul(x[n + k]));
                }
                acc as u32
            })
            .collect();

        let inner = Node::Loop(LoopNode {
            trips: Trips::Const(NTAPS as u32),
            index: Some(IndexSpec {
                reg: reg(20),
                init: h_addr as i32,
                step: 4,
            }),
            counter: reg(12),
            body: vec![Node::code([
                Instr::Lw {
                    rt: reg(4),
                    rs: reg(20),
                    off: 0,
                },
                Instr::Lw {
                    rt: reg(5),
                    rs: reg(7),
                    off: 0,
                },
                Instr::Addi {
                    rt: reg(7),
                    rs: reg(7),
                    imm: 4,
                },
                Instr::Mul {
                    rd: reg(8),
                    rs: reg(4),
                    rt: reg(5),
                },
                Instr::Add {
                    rd: reg(6),
                    rs: reg(6),
                    rt: reg(8),
                },
            ])],
        });
        let ir = LoopIr {
            name: "fir".into(),
            nodes: vec![Node::Loop(LoopNode {
                trips: Trips::Const(NSAMP as u32),
                index: Some(IndexSpec {
                    reg: reg(21),
                    init: x_addr as i32,
                    step: 4,
                }),
                counter: reg(11),
                body: vec![
                    Node::code([
                        Instr::Add {
                            rd: reg(6),
                            rs: Reg::ZERO,
                            rt: Reg::ZERO,
                        },
                        Instr::Add {
                            rd: reg(7),
                            rs: reg(21),
                            rt: Reg::ZERO,
                        },
                    ]),
                    inner,
                    Node::code([
                        Instr::Sw {
                            rt: reg(6),
                            rs: reg(9),
                            off: 0,
                        },
                        Instr::Addi {
                            rt: reg(9),
                            rs: reg(9),
                            imm: 4,
                        },
                    ]),
                ],
            })],
        };
        let expect = Expectation {
            mem_words: vec![(y_addr, y)],
            regs: vec![(reg(9), y_addr + 4 * NSAMP as u32)],
        };
        (ir, expect)
    })
}

/// Four cascaded direct-form-II biquad sections over 48 samples (Q14
/// fixed point). The large per-section body makes this the least
/// loop-dominated kernel — the paper's low-end improvement case.
pub fn build_iir_biquad(target: &Target) -> Result<BuiltKernel, BuildError> {
    const NSECT: usize = 4;
    const NSAMP: usize = 48;
    const REC_WORDS: usize = 7; // b0 b1 b2 a1 a2 w1 w2
    build_kernel("iir_biquad", target, |asm: &mut Asm| {
        let mut rng = Xorshift::new(0x2002);
        // small Q14 coefficients; exactness does not require stability but
        // modest magnitudes keep intermediate values well-behaved
        let mut sections = Vec::new();
        for _ in 0..NSECT {
            sections.push([
                rng.signed(8000), // b0
                rng.signed(4000), // b1
                rng.signed(4000), // b2
                rng.signed(6000), // a1
                rng.signed(3000), // a2
                0,                // w1
                0,                // w2
            ]);
        }
        let x: Vec<i32> = (0..NSAMP).map(|_| rng.signed(2000)).collect();
        let flat: Vec<i32> = sections.iter().flatten().copied().collect();
        let s_addr = asm.words(&flat);
        let x_addr = asm.words(&x);
        let y_addr = asm.zeroed_words(NSAMP);
        asm.li(reg(9), y_addr as i32);

        // reference (identical wrapping Q14 arithmetic)
        let mut st = sections.clone();
        let mut y = Vec::with_capacity(NSAMP);
        for &xi in &x {
            let mut s = xi;
            for sec in st.iter_mut() {
                let (b0, b1, b2, a1, a2, w1, w2) =
                    (sec[0], sec[1], sec[2], sec[3], sec[4], sec[5], sec[6]);
                let mut w0 = s;
                w0 = w0.wrapping_sub(a1.wrapping_mul(w1) >> 14);
                w0 = w0.wrapping_sub(a2.wrapping_mul(w2) >> 14);
                let mut acc = b0.wrapping_mul(w0);
                acc = acc.wrapping_add(b1.wrapping_mul(w1));
                acc = acc.wrapping_add(b2.wrapping_mul(w2));
                s = acc >> 14;
                sec[6] = w1; // w2 = w1
                sec[5] = w0; // w1 = w0
            }
            y.push(s as u32);
        }
        let final_state: Vec<u32> = st.iter().flatten().map(|&v| v as u32).collect();

        // inner body: one biquad section; sample flows in r6
        let section_body = vec![
            Instr::Lw {
                rt: reg(4),
                rs: reg(20),
                off: 12,
            }, // a1
            Instr::Lw {
                rt: reg(5),
                rs: reg(20),
                off: 20,
            }, // w1
            Instr::Mul {
                rd: reg(4),
                rs: reg(4),
                rt: reg(5),
            },
            Instr::Sra {
                rd: reg(4),
                rt: reg(4),
                sh: 14,
            },
            Instr::Sub {
                rd: reg(6),
                rs: reg(6),
                rt: reg(4),
            },
            Instr::Lw {
                rt: reg(4),
                rs: reg(20),
                off: 16,
            }, // a2
            Instr::Lw {
                rt: reg(7),
                rs: reg(20),
                off: 24,
            }, // w2
            Instr::Mul {
                rd: reg(4),
                rs: reg(4),
                rt: reg(7),
            },
            Instr::Sra {
                rd: reg(4),
                rt: reg(4),
                sh: 14,
            },
            Instr::Sub {
                rd: reg(6),
                rs: reg(6),
                rt: reg(4),
            }, // w0
            Instr::Lw {
                rt: reg(4),
                rs: reg(20),
                off: 0,
            }, // b0
            Instr::Mul {
                rd: reg(8),
                rs: reg(4),
                rt: reg(6),
            },
            Instr::Lw {
                rt: reg(4),
                rs: reg(20),
                off: 4,
            }, // b1
            Instr::Mul {
                rd: reg(4),
                rs: reg(4),
                rt: reg(5),
            },
            Instr::Add {
                rd: reg(8),
                rs: reg(8),
                rt: reg(4),
            },
            Instr::Lw {
                rt: reg(4),
                rs: reg(20),
                off: 8,
            }, // b2
            Instr::Mul {
                rd: reg(4),
                rs: reg(4),
                rt: reg(7),
            },
            Instr::Add {
                rd: reg(8),
                rs: reg(8),
                rt: reg(4),
            },
            Instr::Sw {
                rt: reg(5),
                rs: reg(20),
                off: 24,
            }, // w2 = w1
            Instr::Sw {
                rt: reg(6),
                rs: reg(20),
                off: 20,
            }, // w1 = w0
            Instr::Sra {
                rd: reg(6),
                rt: reg(8),
                sh: 14,
            }, // s = y
        ];
        let ir = LoopIr {
            name: "iir_biquad".into(),
            nodes: vec![Node::Loop(LoopNode {
                trips: Trips::Const(NSAMP as u32),
                index: Some(IndexSpec {
                    reg: reg(21),
                    init: x_addr as i32,
                    step: 4,
                }),
                counter: reg(11),
                body: vec![
                    Node::code([Instr::Lw {
                        rt: reg(6),
                        rs: reg(21),
                        off: 0,
                    }]),
                    Node::Loop(LoopNode {
                        trips: Trips::Const(NSECT as u32),
                        index: Some(IndexSpec {
                            reg: reg(20),
                            init: s_addr as i32,
                            step: 4 * REC_WORDS as i32,
                        }),
                        counter: reg(12),
                        body: vec![Node::Code(section_body)],
                    }),
                    Node::code([
                        Instr::Sw {
                            rt: reg(6),
                            rs: reg(9),
                            off: 0,
                        },
                        Instr::Addi {
                            rt: reg(9),
                            rs: reg(9),
                            imm: 4,
                        },
                    ]),
                ],
            })],
        };
        let expect = Expectation {
            mem_words: vec![(y_addr, y), (s_addr, final_state)],
            regs: vec![],
        };
        (ir, expect)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{fig2_targets, run_kernel};

    #[test]
    fn fir_correct_on_all_targets() {
        for t in fig2_targets() {
            let b = build_fir(&t).unwrap();
            let r = run_kernel(&b, 2_000_000).unwrap();
            assert!(r.is_correct(), "{t}: {:?} {:?}", r.mismatches, r.violations);
        }
    }

    #[test]
    fn iir_biquad_correct_on_all_targets() {
        for t in fig2_targets() {
            let b = build_iir_biquad(&t).unwrap();
            let r = run_kernel(&b, 2_000_000).unwrap();
            assert!(r.is_correct(), "{t}: {:?} {:?}", r.mismatches, r.violations);
        }
    }
}
