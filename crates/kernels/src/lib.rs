//! # zolc-kernels — the benchmark suite of the ZOLC evaluation
//!
//! Twelve kernels in the style of the XiRisc validation suite plus
//! software motion-estimation kernels, matching the description of the
//! paper's §3 benchmark set. Each kernel is written once in the
//! [`zolc_ir`] structured loop IR, lowered for the three Fig. 2 processor
//! configurations (`XRdefault`, `XRhrdwil`, `ZOLClite` — plus any other
//! ZOLC configuration), and validated **bit-exactly** against a Rust
//! reference model before cycle counts are reported.
//!
//! The Fig. 2 set ([`kernels`]):
//!
//! | kernel       | structure                                  |
//! |--------------|--------------------------------------------|
//! | `vec_mac`    | 1 loop, dual-stream multiply-accumulate    |
//! | `vec_max`    | 1 loop + conditional update                |
//! | `fir`        | 2-deep imperfect nest                      |
//! | `iir_biquad` | 2-deep nest, 21-instruction body           |
//! | `matmul`     | 3-deep nest                                |
//! | `conv2d`     | 4-deep imperfect nest                      |
//! | `dct8x8`     | two sequential 3-deep nests (6 loops)      |
//! | `crc32`      | 2-deep, pure-counter inner loop            |
//! | `bubble_sort`| triangular nest (data-dependent bound)     |
//! | `fft16`      | 3-deep, all bounds stage-dependent         |
//! | `me_fs`      | 4-deep motion-estimation full search       |
//! | `me_tss`     | 4-deep three-step search                   |
//!
//! Extra kernels for the ablation experiments ([`extra_kernels`]):
//! `me_fs_early` (multiple-exit loops) and `find_first` (single-loop
//! early exit, runs even on uZOLC).
//!
//! Besides the hand lowerings, every kernel can be built through the
//! **automatic retargeting pipeline** ([`build_kernel_auto`]): the
//! `XRdefault` binary is excised and overlaid by `zolc_cfg::retarget`,
//! with no IR knowledge, and verified against the same reference
//! expectation.
//!
//! # Examples
//!
//! ```
//! use zolc_kernels::{kernels, run_kernel};
//! use zolc_ir::Target;
//!
//! let entry = &kernels()[0];
//! let built = (entry.build)(&Target::Baseline)?;
//! let run = run_kernel(&built, 10_000_000)?;
//! assert!(run.is_correct());
//! assert!(run.stats.cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod auto;
mod common;
mod filters;
mod linalg;
mod misc;
mod motion;
mod vec;

pub use auto::{build_kernel_auto, AutoKernel, AutoStats};
pub use common::{
    fig2_targets, run_kernel, BuildError, BuiltKernel, Expectation, KernelRun, Xorshift,
};
pub use filters::{build_fir, build_iir_biquad};
pub use linalg::{build_conv2d, build_dct8x8, build_matmul};
pub use misc::{build_bubble_sort, build_crc32, build_fft16};
pub use motion::{build_find_first, build_me_fs, build_me_fs_early, build_me_tss};
pub use vec::{build_vec_mac, build_vec_max};
pub use zolc_sim::ExecutorKind;

use zolc_ir::Target;

/// A kernel builder function: deterministic for a given target.
pub type BuildFn = fn(&Target) -> Result<BuiltKernel, BuildError>;

/// A registry entry describing one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct KernelEntry {
    /// Kernel name (matches `BuiltKernel::name`).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The builder.
    pub build: BuildFn,
}

/// The twelve benchmarks of the paper's Fig. 2 comparison.
pub fn kernels() -> &'static [KernelEntry] {
    &[
        KernelEntry {
            name: "vec_mac",
            description: "64-element dot product with energy accumulation",
            build: build_vec_mac,
        },
        KernelEntry {
            name: "vec_max",
            description: "80-element maximum search with argument tracking",
            build: build_vec_max,
        },
        KernelEntry {
            name: "fir",
            description: "16-tap FIR filter over 64 samples",
            build: build_fir,
        },
        KernelEntry {
            name: "iir_biquad",
            description: "4-section cascaded biquad IIR over 48 samples (Q14)",
            build: build_iir_biquad,
        },
        KernelEntry {
            name: "matmul",
            description: "8x8x8 integer matrix multiply",
            build: build_matmul,
        },
        KernelEntry {
            name: "conv2d",
            description: "3x3 convolution over a 16x16 image",
            build: build_conv2d,
        },
        KernelEntry {
            name: "dct8x8",
            description: "8x8 two-pass DCT (Q13)",
            build: build_dct8x8,
        },
        KernelEntry {
            name: "crc32",
            description: "bit-serial CRC-32 over 32 bytes",
            build: build_crc32,
        },
        KernelEntry {
            name: "bubble_sort",
            description: "bubble sort of 24 words (triangular nest)",
            build: build_bubble_sort,
        },
        KernelEntry {
            name: "fft16",
            description: "16-point radix-2 FFT (Q14, stage-dependent bounds)",
            build: build_fft16,
        },
        KernelEntry {
            name: "me_fs",
            description: "motion estimation: full search, +-4 window, 8x8 SAD",
            build: build_me_fs,
        },
        KernelEntry {
            name: "me_tss",
            description: "motion estimation: three-step search",
            build: build_me_tss,
        },
    ]
}

/// Additional kernels used by the ablation experiments (multiple-exit
/// loops and uZOLC-compatible early exit).
pub fn extra_kernels() -> &'static [KernelEntry] {
    &[
        KernelEntry {
            name: "me_fs_early",
            description: "full search with early SAD termination (multi-exit)",
            build: build_me_fs_early,
        },
        KernelEntry {
            name: "find_first",
            description: "single-loop early-exit search (uZOLC-compatible)",
            build: build_find_first,
        },
    ]
}

/// Looks up a registry entry by name across the Fig. 2 set and the
/// ablation extras.
pub fn find_kernel(name: &str) -> Option<KernelEntry> {
    kernels()
        .iter()
        .chain(extra_kernels())
        .find(|k| k.name == name)
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_kernel_covers_both_registries() {
        assert_eq!(find_kernel("vec_mac").unwrap().name, "vec_mac");
        assert_eq!(find_kernel("me_fs_early").unwrap().name, "me_fs_early");
        assert!(find_kernel("no_such_kernel").is_none());
    }

    #[test]
    fn registry_has_twelve_fig2_kernels() {
        assert_eq!(kernels().len(), 12);
        let mut names: Vec<&str> = kernels().iter().map(|k| k.name).collect();
        names.dedup();
        assert_eq!(names.len(), 12, "duplicate kernel names");
    }

    #[test]
    fn registry_names_match_built_names() {
        for k in kernels() {
            let b = (k.build)(&Target::Baseline).unwrap();
            assert_eq!(b.name, k.name);
        }
    }

    #[test]
    fn descriptions_are_nonempty() {
        for k in kernels().iter().chain(extra_kernels()) {
            assert!(!k.description.is_empty());
        }
    }
}
