//! The `zolcd` server: a TCP accept loop, thread-per-connection job
//! dispatch, and the two content-addressed result caches.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use zolc_bench::json::{self, Json};
use zolc_bench::{run_sweep, SweepConfig};
use zolc_core::ZolcConfig;
use zolc_isa::Program;

use crate::cache::ResultCache;
use crate::protocol::{
    err_response, lint_report_json, lint_request, ok_response, read_frame, retarget_request,
    retargeted_json, sweep_config_json, write_frame,
};

/// How a [`Daemon`] binds and serves.
///
/// Construct with [`DaemonConfig::new`] and `with_*` builders — the
/// struct is `#[non_exhaustive]` so new knobs can land without breaking
/// callers.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct DaemonConfig {
    /// The address to listen on. Port 0 picks a free port; read the
    /// actual one back with [`Daemon::local_addr`].
    pub addr: String,
}

impl DaemonConfig {
    /// The default configuration: loopback only, kernel-assigned port.
    pub fn new() -> DaemonConfig {
        DaemonConfig {
            addr: "127.0.0.1:0".into(),
        }
    }

    /// Sets the listen address.
    #[must_use]
    pub fn with_addr(mut self, addr: impl Into<String>) -> DaemonConfig {
        self.addr = addr.into();
        self
    }
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig::new()
    }
}

/// Computes the canonical result document for a retarget job — the
/// exact string `zolcd` caches and serves, exposed so offline
/// verification (the smoke client's `--verify` mode, tests) can
/// byte-compare against a daemon response.
///
/// # Errors
///
/// The retargeting error, rendered to the string the daemon would put
/// in its failure response.
pub fn retarget_result(program: &Program, config: &ZolcConfig) -> Result<String, String> {
    // Jobs arrive as binaries, so the daemon's view of a program has no
    // symbol table. Normalize to the same wire form here — symbols only
    // affect relocation *notes*, but notes are part of the response
    // bytes, and offline verification retargets label-bearing originals.
    let wire = Program::from_parts(program.text().to_vec(), program.data().to_vec());
    let r = zolc_cfg::retarget(&wire, config).map_err(|e| e.to_string())?;
    Ok(retargeted_json(&r).render())
}

/// Computes the canonical result document for a lint job (see
/// [`retarget_result`] — same contract, for the binary lint pass).
/// With a configuration the binary is retargeted on it first and the
/// excised program is linted against its synthesized table image;
/// without one the binary is linted as-is.
///
/// # Errors
///
/// The retargeting error (when a configuration was given), rendered to
/// the string the daemon would put in its failure response.
pub fn lint_result(program: &Program, config: Option<&ZolcConfig>) -> Result<String, String> {
    let wire = Program::from_parts(program.text().to_vec(), program.data().to_vec());
    let report = match config {
        Some(config) => {
            let r = zolc_cfg::retarget(&wire, config).map_err(|e| e.to_string())?;
            zolc_cfg::lint_program(&r.program, Some(&r.image))
        }
        None => zolc_cfg::lint_program(&wire, None),
    };
    Ok(lint_report_json(&report).render())
}

/// Computes the canonical result document for a sweep job (see
/// [`retarget_result`] — same contract, for sweeps).
///
/// # Errors
///
/// A description of the panic, if the sweep harness panicked.
pub fn sweep_result(cfg: &SweepConfig) -> Result<String, String> {
    // A generator or executor bug must fail the one job, not the
    // daemon: the sweep runs under catch_unwind and the panic is
    // cached like any other failure.
    match catch_unwind(AssertUnwindSafe(|| run_sweep(cfg))) {
        Ok(report) => Ok(zolc_bench::report_json(&report).render()),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "sweep panicked".into());
            Err(format!("sweep panicked: {msg}"))
        }
    }
}

/// The complete, byte-exact response a daemon sends for a retarget
/// job — computed locally. The daemon smoke test's `--verify` mode
/// compares these against live responses.
pub fn offline_retarget_response(program: &Program, config: &ZolcConfig) -> Vec<u8> {
    match retarget_result(program, config) {
        Ok(doc) => ok_response(&doc),
        Err(e) => err_response(&e),
    }
}

/// The complete, byte-exact response a daemon sends for a lint job —
/// computed locally (see [`offline_retarget_response`]).
pub fn offline_lint_response(program: &Program, config: Option<&ZolcConfig>) -> Vec<u8> {
    match lint_result(program, config) {
        Ok(doc) => ok_response(&doc),
        Err(e) => err_response(&e),
    }
}

/// The complete, byte-exact response a daemon sends for a sweep job —
/// computed locally (see [`offline_retarget_response`]).
pub fn offline_sweep_response(cfg: &SweepConfig) -> Vec<u8> {
    match sweep_result(cfg) {
        Ok(doc) => ok_response(&doc),
        Err(e) => err_response(&e),
    }
}

struct Shared {
    /// Canonical retarget request bytes → rendered retarget result.
    retargets: ResultCache,
    /// Canonical lint request bytes → rendered lint report.
    lints: ResultCache,
    /// Canonical sweep configuration bytes → rendered sweep report.
    sweeps: ResultCache,
    stop: AtomicBool,
    addr: SocketAddr,
}

impl Shared {
    fn stats_json(&self) -> Json {
        let cache = |s: crate::cache::CacheStats| {
            Json::Obj(vec![
                ("hits".into(), Json::u64(s.hits)),
                ("misses".into(), Json::u64(s.misses)),
                ("entries".into(), Json::u64(s.entries as u64)),
            ])
        };
        Json::Obj(vec![
            ("retarget".into(), cache(self.retargets.stats())),
            ("lint".into(), cache(self.lints.stats())),
            ("sweep".into(), cache(self.sweeps.stats())),
        ])
    }

    /// Dispatches one decoded request, returning the response payload
    /// and whether this was a shutdown request.
    fn dispatch(&self, payload: &[u8]) -> (Vec<u8>, bool) {
        let doc = match std::str::from_utf8(payload)
            .map_err(|e| e.to_string())
            .and_then(|s| json::parse(s).map_err(|e| e.to_string()))
        {
            Ok(doc) => doc,
            Err(e) => return (err_response(&format!("malformed request: {e}")), false),
        };
        let Some(op) = doc.get("op").and_then(Json::as_str) else {
            return (err_response("request has no `op` field"), false);
        };
        match op {
            "ping" => (ok_response("\"pong\""), false),
            "stats" => (ok_response(&self.stats_json().render()), false),
            "shutdown" => (ok_response("\"bye\""), true),
            "retarget" => (self.retarget_job(&doc), false),
            "lint" => (self.lint_job(&doc), false),
            "sweep" => (self.sweep_job(&doc), false),
            other => (err_response(&format!("unknown op `{other}`")), false),
        }
    }

    fn retarget_job(&self, doc: &Json) -> Vec<u8> {
        let program = match crate::protocol::parse_retarget_program(doc) {
            Ok(p) => p,
            Err(e) => return err_response(&e),
        };
        let config = match doc
            .get("config")
            .ok_or("retarget: missing `config`".to_owned())
            .and_then(|c| crate::protocol::parse_zolc_config(c).map_err(|e| e.to_owned()))
        {
            Ok(c) => c,
            Err(e) => return err_response(&e),
        };
        // The cache key is the *canonical* re-encoding of the decoded
        // job, not the client's bytes: two clients formatting the same
        // job differently share one entry.
        let canon = retarget_request(&program, &config).render();
        match self
            .retargets
            .get_or_compute(canon.as_bytes(), || retarget_result(&program, &config))
        {
            Ok(doc) => ok_response(&doc),
            Err(e) => err_response(&e),
        }
    }

    fn lint_job(&self, doc: &Json) -> Vec<u8> {
        let program = match crate::protocol::parse_lint_program(doc) {
            Ok(p) => p,
            Err(e) => return err_response(&e),
        };
        // `config` is optional here: absent means "lint the binary
        // as-is", present means "retarget on it, lint the result".
        let config = match doc
            .get("config")
            .map(crate::protocol::parse_zolc_config)
            .transpose()
        {
            Ok(c) => c,
            Err(e) => return err_response(&e),
        };
        let canon = lint_request(&program, config.as_ref()).render();
        match self
            .lints
            .get_or_compute(canon.as_bytes(), || lint_result(&program, config.as_ref()))
        {
            Ok(doc) => ok_response(&doc),
            Err(e) => err_response(&e),
        }
    }

    fn sweep_job(&self, doc: &Json) -> Vec<u8> {
        let cfg = match doc
            .get("config")
            .ok_or("sweep: missing `config`".to_owned())
            .and_then(crate::protocol::parse_sweep_config)
        {
            Ok(c) => c,
            Err(e) => return err_response(&e),
        };
        let canon = sweep_config_json(&cfg).render();
        match self
            .sweeps
            .get_or_compute(canon.as_bytes(), || sweep_result(&cfg))
        {
            Ok(doc) => ok_response(&doc),
            Err(e) => err_response(&e),
        }
    }
}

/// A bound `zolcd` instance.
///
/// [`Daemon::bind`] reserves the socket (so the port is known before
/// any client starts); [`Daemon::run`] serves until a `shutdown`
/// request arrives.
pub struct Daemon {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Daemon {
    /// Binds the listen socket.
    ///
    /// # Errors
    ///
    /// The socket error if the address cannot be bound.
    pub fn bind(config: &DaemonConfig) -> io::Result<Daemon> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        Ok(Daemon {
            listener,
            shared: Arc::new(Shared {
                retargets: ResultCache::new(),
                lints: ResultCache::new(),
                sweeps: ResultCache::new(),
                stop: AtomicBool::new(false),
                addr,
            }),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Serves connections until a client sends `shutdown`, then drains:
    /// already-accepted connections finish their in-flight jobs before
    /// this returns.
    ///
    /// # Errors
    ///
    /// A fatal accept-loop error (per-connection I/O errors only drop
    /// that connection).
    pub fn run(self) -> io::Result<()> {
        let mut workers = Vec::new();
        for conn in self.listener.incoming() {
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = conn?;
            let shared = Arc::clone(&self.shared);
            workers.push(thread::spawn(move || serve_connection(stream, &shared)));
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// Serves one connection: frames in, responses out, until EOF or a
/// fatal I/O error. On `shutdown` the reply is written first, then the
/// accept loop is woken with a throwaway self-connection.
fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    while let Ok(Some(payload)) = read_frame(&mut stream) {
        let (response, shutdown) = shared.dispatch(&payload);
        if write_frame(&mut stream, &response).is_err() {
            return;
        }
        if shutdown {
            shared.stop.store(true, Ordering::SeqCst);
            // `incoming()` has no timeout; a throwaway connection makes
            // it yield once more so the accept loop observes `stop`.
            drop(TcpStream::connect(shared.addr));
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use zolc_bench::SweepPoint;
    use zolc_sim::ExecutorKind;

    fn spawn_daemon() -> (SocketAddr, thread::JoinHandle<io::Result<()>>) {
        let daemon = Daemon::bind(&DaemonConfig::new()).unwrap();
        let addr = daemon.local_addr();
        (addr, thread::spawn(move || daemon.run()))
    }

    fn tiny_sweep() -> SweepConfig {
        SweepConfig::new()
            .with_programs(2)
            .with_points(vec![SweepPoint::new("lite", ZolcConfig::lite())])
            .with_executor(ExecutorKind::Functional)
    }

    fn loop_program() -> Program {
        zolc_isa::assemble(
            "
            li   r11, 5
      top:  addi r11, r11, -1
            bne  r11, r0, top
            halt
        ",
        )
        .unwrap()
    }

    #[test]
    fn ping_stats_and_shutdown() {
        let (addr, handle) = spawn_daemon();
        let mut c = Client::connect(addr).unwrap();
        assert!(c.ping().unwrap());
        let stats = c.stats().unwrap();
        assert_eq!(
            stats.get("retarget").unwrap().get("hits").unwrap().as_u64(),
            Some(0)
        );
        c.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn warm_retarget_responses_are_byte_identical_to_cold_and_offline() {
        let (addr, handle) = spawn_daemon();
        let program = loop_program();
        let config = ZolcConfig::lite();

        let mut c = Client::connect(addr).unwrap();
        let cold = c.retarget(&program, &config).unwrap();
        let warm = c.retarget(&program, &config).unwrap();
        assert_eq!(cold, warm, "cache hit changed the response bytes");
        assert_eq!(
            cold,
            offline_retarget_response(&program, &config),
            "daemon response diverged from the offline computation"
        );

        let stats = c.stats().unwrap();
        let retarget = stats.get("retarget").unwrap();
        assert_eq!(retarget.get("hits").unwrap().as_u64(), Some(1));
        assert_eq!(retarget.get("misses").unwrap().as_u64(), Some(1));

        c.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn lint_jobs_match_offline_report_findings_and_cache() {
        let (addr, handle) = spawn_daemon();
        // the loop program plus one dead store: the first write to `r9`
        // is overwritten before any read
        let dirty = zolc_isa::assemble(
            "
            li   r9, 7
            li   r9, 8
            li   r11, 5
      top:  addi r11, r11, -1
            bne  r11, r0, top
            halt
        ",
        )
        .unwrap();

        let mut c = Client::connect(addr).unwrap();
        let cold = c.lint(&dirty, None).unwrap();
        let warm = c.lint(&dirty, None).unwrap();
        assert_eq!(cold, warm, "cache hit changed the response bytes");
        assert_eq!(
            cold,
            offline_lint_response(&dirty, None),
            "daemon response diverged from the offline computation"
        );
        let body = String::from_utf8(cold).unwrap();
        assert!(body.contains("\"clean\":false"), "{body}");
        assert!(body.contains("dead-store"), "{body}");

        // with a configuration: retarget first, lint the excised binary
        // against its image — the clean loop program stays clean
        let clean = loop_program();
        let r = c.lint(&clean, Some(&ZolcConfig::lite())).unwrap();
        assert_eq!(r, offline_lint_response(&clean, Some(&ZolcConfig::lite())));
        let body = String::from_utf8(r).unwrap();
        assert!(body.contains("\"clean\":true"), "{body}");

        let stats = c.stats().unwrap();
        let lint = stats.get("lint").unwrap();
        assert_eq!(lint.get("hits").unwrap().as_u64(), Some(1));
        assert_eq!(lint.get("misses").unwrap().as_u64(), Some(2));

        c.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn sweep_jobs_match_offline_and_hit_on_repeat() {
        let (addr, handle) = spawn_daemon();
        let cfg = tiny_sweep();

        let mut c = Client::connect(addr).unwrap();
        let cold = c.sweep(&cfg).unwrap();
        let warm = c.sweep(&cfg).unwrap();
        assert_eq!(cold, warm);
        assert_eq!(cold, offline_sweep_response(&cfg));

        c.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn concurrent_clients_share_the_cache_and_agree() {
        let (addr, handle) = spawn_daemon();
        let program = loop_program();
        let config = ZolcConfig::full();
        let expected = offline_retarget_response(&program, &config);

        thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut c = Client::connect(addr).unwrap();
                    for _ in 0..3 {
                        assert_eq!(c.retarget(&program, &config).unwrap(), expected);
                    }
                });
            }
        });

        let mut c = Client::connect(addr).unwrap();
        let stats = c.stats().unwrap();
        let retarget = stats.get("retarget").unwrap();
        assert_eq!(retarget.get("misses").unwrap().as_u64(), Some(1));
        assert_eq!(retarget.get("hits").unwrap().as_u64(), Some(11));

        c.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn malformed_requests_get_errors_not_disconnects() {
        let (addr, handle) = spawn_daemon();
        let mut c = Client::connect(addr).unwrap();

        let r = c.request_raw(b"not json").unwrap();
        assert!(
            r.starts_with(b"{\"ok\":false"),
            "{:?}",
            String::from_utf8_lossy(&r)
        );
        let r = c.request_raw(b"{\"op\":\"dance\"}").unwrap();
        assert!(r.starts_with(b"{\"ok\":false"));
        // the connection survived both
        assert!(c.ping().unwrap());

        c.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn undecodable_binaries_are_rejected_with_the_offending_word() {
        let (addr, handle) = spawn_daemon();
        let mut c = Client::connect(addr).unwrap();
        let r = c
            .request(&Json::Obj(vec![
                ("op".into(), Json::Str("retarget".into())),
                // opcode 0x3e names no instruction
                ("binary".into(), Json::Arr(vec![Json::u64(0x3e << 26)])),
                (
                    "config".into(),
                    Json::Obj(vec![("variant".into(), Json::Str("lite".into()))]),
                ),
            ]))
            .unwrap();
        assert!(r.starts_with(b"{\"ok\":false"));
        c.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }
}
