//! A blocking `zolcd` client over one TCP connection.
//!
//! Job methods return the daemon's **raw response bytes** rather than a
//! decoded structure: the smoke test's contract is byte-identity
//! between daemon responses and offline computation, and decoding then
//! re-encoding would launder exactly the bytes the comparison is meant
//! to check. Decode with [`zolc_bench::json::parse`] (and
//! [`crate::protocol::parse_retargeted_program`] for retarget results)
//! when you want the structure.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use zolc_bench::json::{self, Json};
use zolc_bench::SweepConfig;
use zolc_core::ZolcConfig;
use zolc_isa::Program;

use crate::protocol::{lint_request, read_frame, retarget_request, sweep_request, write_frame};

/// One connection to a running `zolcd`, carrying any number of
/// sequential requests.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// The socket error if the daemon is unreachable.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends raw request bytes and returns the raw response bytes.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`io::ErrorKind::UnexpectedEof`] if the daemon
    /// closed the connection instead of responding.
    pub fn request_raw(&mut self, payload: &[u8]) -> io::Result<Vec<u8>> {
        write_frame(&mut self.stream, payload)?;
        read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection without responding",
            )
        })
    }

    /// Sends a JSON request and returns the raw response bytes.
    ///
    /// # Errors
    ///
    /// See [`Client::request_raw`].
    pub fn request(&mut self, doc: &Json) -> io::Result<Vec<u8>> {
        self.request_raw(doc.render().as_bytes())
    }

    /// Parses a response and extracts its `result`, mapping
    /// `{"ok":false}` responses to [`io::ErrorKind::Other`] errors.
    fn result_of(response: &[u8]) -> io::Result<Json> {
        let doc = std::str::from_utf8(response)
            .ok()
            .and_then(|s| json::parse(s).ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "unparsable response"))?;
        match doc.get("ok") {
            Some(Json::Bool(true)) => doc.get("result").cloned().ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "ok response without result")
            }),
            _ => {
                let msg = doc
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("daemon reported an unspecified error");
                Err(io::Error::other(msg.to_owned()))
            }
        }
    }

    /// Round-trips a `ping`; `true` when the daemon answered `pong`.
    ///
    /// # Errors
    ///
    /// See [`Client::request_raw`].
    pub fn ping(&mut self) -> io::Result<bool> {
        let r = self.request(&Json::Obj(vec![("op".into(), Json::Str("ping".into()))]))?;
        Ok(Self::result_of(&r)?.as_str() == Some("pong"))
    }

    /// Fetches the daemon's cache statistics (the decoded `result`
    /// object: per-cache `hits` / `misses` / `entries`).
    ///
    /// # Errors
    ///
    /// See [`Client::request_raw`].
    pub fn stats(&mut self) -> io::Result<Json> {
        let r = self.request(&Json::Obj(vec![("op".into(), Json::Str("stats".into()))]))?;
        Self::result_of(&r)
    }

    /// Asks the daemon to shut down (it finishes in-flight jobs first).
    ///
    /// # Errors
    ///
    /// See [`Client::request_raw`].
    pub fn shutdown(&mut self) -> io::Result<()> {
        let r = self.request(&Json::Obj(vec![(
            "op".into(),
            Json::Str("shutdown".into()),
        )]))?;
        Self::result_of(&r).map(drop)
    }

    /// Submits a retarget job, returning the raw response bytes
    /// (compare with
    /// [`offline_retarget_response`](crate::server::offline_retarget_response)).
    ///
    /// # Errors
    ///
    /// See [`Client::request_raw`]. Job *failures* are not transport
    /// errors: they come back as `{"ok":false}` response bytes.
    pub fn retarget(&mut self, program: &Program, config: &ZolcConfig) -> io::Result<Vec<u8>> {
        self.request(&retarget_request(program, config))
    }

    /// Submits a lint job, returning the raw response bytes (compare
    /// with [`offline_lint_response`](crate::server::offline_lint_response)).
    /// With a `config` the daemon retargets the binary on it first and
    /// lints the excised program against its table image; without one
    /// the binary is linted as-is.
    ///
    /// # Errors
    ///
    /// See [`Client::retarget`].
    pub fn lint(&mut self, program: &Program, config: Option<&ZolcConfig>) -> io::Result<Vec<u8>> {
        self.request(&lint_request(program, config))
    }

    /// Submits a sweep job, returning the raw response bytes (compare
    /// with [`offline_sweep_response`](crate::server::offline_sweep_response)).
    ///
    /// # Errors
    ///
    /// See [`Client::retarget`].
    pub fn sweep(&mut self, cfg: &SweepConfig) -> io::Result<Vec<u8>> {
        self.request(&sweep_request(cfg))
    }
}
