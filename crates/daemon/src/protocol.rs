//! The `zolcd` wire protocol: length-prefixed JSON frames and the
//! canonical codecs for job requests and results.
//!
//! # Frame layout
//!
//! Every message — request or response — is one **frame**: a 4-byte
//! big-endian payload length followed by that many bytes of UTF-8 JSON.
//! Frames longer than [`MAX_FRAME`] bytes are rejected before any
//! allocation, so a corrupt length prefix cannot balloon the server.
//! A connection carries any number of frames back to back; a clean EOF
//! between frames ends the conversation.
//!
//! # Requests and responses
//!
//! A request is a JSON object with an `"op"` field:
//!
//! | op         | payload                                   |
//! |------------|-------------------------------------------|
//! | `ping`     | —                                         |
//! | `stats`    | —                                         |
//! | `retarget` | `binary` (encoded text words), `data` (bytes), `config` (ZOLC configuration) |
//! | `lint`     | `binary` (encoded text words), `data` (bytes), optional `config` (retarget on it first, lint against the image) |
//! | `sweep`    | `config` (sweep configuration)            |
//! | `shutdown` | —                                         |
//!
//! A response is `{"ok":true,...}` on success or
//! `{"ok":false,"error":"..."}` on failure. Job responses carry the
//! result under `"result"` and are **byte-identical** whether the
//! answer was computed or served from cache — there is deliberately no
//! "cached" marker, so cache hits are observable only through `stats`.
//!
//! # Canonicalization
//!
//! Cache keys never hash raw request bytes: requests are decoded, then
//! re-encoded through the canonical constructors here, so two clients
//! that format the same job differently (field order, whitespace,
//! redundant fields on named configuration variants) still share one
//! cache entry.

use std::io::{self, Read, Write};
use std::sync::Arc;
use zolc_bench::json::Json;
use zolc_bench::SweepPoint;
use zolc_cfg::{LintReport, Retargeted};
use zolc_core::{ZolcConfig, ZolcVariant};
use zolc_gen::GenConfig;
use zolc_isa::Program;
use zolc_sim::ExecutorKind;

/// Hard cap on one frame's payload, request or response (64 MiB —
/// comfortably above any sweep report, far below an allocation bomb).
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF at a frame
/// boundary.
///
/// # Errors
///
/// I/O errors from the underlying reader; [`io::ErrorKind::InvalidData`]
/// when the length prefix exceeds [`MAX_FRAME`];
/// [`io::ErrorKind::UnexpectedEof`] when the stream ends mid-frame.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read(&mut len)? {
        0 => return Ok(None),
        n => r.read_exact(&mut len[n..])?,
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME} byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// I/O errors from the writer; [`io::ErrorKind::InvalidData`] when the
/// payload exceeds [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME} byte cap",
                payload.len()
            ),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// The success response wrapping an already-rendered result document.
///
/// The `result` string is spliced in verbatim — this is what makes a
/// cache hit byte-identical to the cold computation that populated it.
pub fn ok_response(result: &str) -> Vec<u8> {
    let mut out = String::with_capacity(result.len() + 16);
    out.push_str("{\"ok\":true,\"result\":");
    out.push_str(result);
    out.push('}');
    out.into_bytes()
}

/// The failure response for `error`.
pub fn err_response(error: &str) -> Vec<u8> {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::Str(error.to_owned())),
    ])
    .render()
    .into_bytes()
}

// ---- ZolcConfig ---------------------------------------------------------

/// The canonical JSON encoding of a controller configuration.
///
/// Named variants carry only their name; `custom` carries the four
/// capacity knobs. Decoding ignores redundant fields, so this is also
/// the canonical form cache keys are built from.
pub fn zolc_config_json(config: &ZolcConfig) -> Json {
    let name = match config.variant() {
        ZolcVariant::Micro => "micro",
        ZolcVariant::Lite => "lite",
        ZolcVariant::Full => "full",
        ZolcVariant::Custom => {
            return Json::Obj(vec![
                ("variant".into(), Json::Str("custom".into())),
                ("loops".into(), Json::u64(config.loops() as u64)),
                ("tasks".into(), Json::u64(config.tasks() as u64)),
                ("entries".into(), Json::u64(config.entry_slots() as u64)),
                ("exits".into(), Json::u64(config.exit_slots() as u64)),
            ]);
        }
    };
    Json::Obj(vec![("variant".into(), Json::Str(name.into()))])
}

/// Decodes a controller configuration (see [`zolc_config_json`]).
///
/// # Errors
///
/// A message naming the missing or invalid field, or the capacity error
/// from [`ZolcConfig::custom`].
pub fn parse_zolc_config(doc: &Json) -> Result<ZolcConfig, String> {
    let variant = doc
        .get("variant")
        .and_then(Json::as_str)
        .ok_or("config: missing `variant`")?;
    match variant {
        "micro" => Ok(ZolcConfig::micro()),
        "lite" => Ok(ZolcConfig::lite()),
        "full" => Ok(ZolcConfig::full()),
        "custom" => {
            let knob = |key: &str| -> Result<usize, String> {
                doc.get(key)
                    .and_then(Json::as_u64)
                    .map(|v| v as usize)
                    .ok_or(format!("config: custom variant needs integer `{key}`"))
            };
            ZolcConfig::custom(
                knob("loops")?,
                knob("tasks")?,
                knob("entries")?,
                knob("exits")?,
            )
            .map_err(|e| format!("config: {e}"))
        }
        other => Err(format!("config: unknown variant `{other}`")),
    }
}

// ---- GenConfig ----------------------------------------------------------

/// The canonical JSON encoding of the generator knobs.
pub fn gen_config_json(gen: &GenConfig) -> Json {
    Json::Obj(vec![
        ("max_top".into(), Json::u64(gen.max_top as u64)),
        ("max_depth".into(), Json::u64(gen.max_depth as u64)),
        ("max_children".into(), Json::u64(gen.max_children as u64)),
        ("max_body".into(), Json::u64(gen.max_body as u64)),
        ("max_trips".into(), Json::u64(u64::from(gen.max_trips))),
        ("max_loops".into(), Json::u64(gen.max_loops as u64)),
        ("reg_bounds".into(), Json::Bool(gen.reg_bounds)),
        ("dbnz".into(), Json::Bool(gen.dbnz)),
        ("skips".into(), Json::Bool(gen.skips)),
    ])
}

/// Decodes generator knobs; absent fields keep their defaults, so a
/// client may send only what it overrides.
///
/// # Errors
///
/// A message naming the field with a non-integer / non-boolean value.
pub fn parse_gen_config(doc: &Json) -> Result<GenConfig, String> {
    let mut gen = GenConfig::new();
    let int = |key: &str| -> Result<Option<u64>, String> {
        match doc.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_u64()
                .map(Some)
                .ok_or(format!("gen: `{key}` is not an integer")),
        }
    };
    let flag = |key: &str| -> Result<Option<bool>, String> {
        match doc.get(key) {
            None => Ok(None),
            Some(Json::Bool(b)) => Ok(Some(*b)),
            Some(_) => Err(format!("gen: `{key}` is not a boolean")),
        }
    };
    if let Some(v) = int("max_top")? {
        gen = gen.with_max_top(v as usize);
    }
    if let Some(v) = int("max_depth")? {
        gen = gen.with_max_depth(v as usize);
    }
    if let Some(v) = int("max_children")? {
        gen = gen.with_max_children(v as usize);
    }
    if let Some(v) = int("max_body")? {
        gen = gen.with_max_body(v as usize);
    }
    if let Some(v) = int("max_trips")? {
        gen = gen.with_max_trips(v as u32);
    }
    if let Some(v) = int("max_loops")? {
        gen = gen.with_max_loops(v as usize);
    }
    if let Some(v) = flag("reg_bounds")? {
        gen = gen.with_reg_bounds(v);
    }
    if let Some(v) = flag("dbnz")? {
        gen = gen.with_dbnz(v);
    }
    if let Some(v) = flag("skips")? {
        gen = gen.with_skips(v);
    }
    Ok(gen)
}

// ---- SweepConfig --------------------------------------------------------

fn executor_name(kind: ExecutorKind) -> &'static str {
    match kind {
        ExecutorKind::CycleAccurate => "cycle-accurate",
        ExecutorKind::Functional => "functional",
        ExecutorKind::Compiled => "compiled",
        ExecutorKind::Nest => "nest",
        // `ExecutorKind` is non_exhaustive; a tier added upstream must
        // get a wire name here before the daemon can serve it.
        _ => unreachable!("executor tier without a wire name"),
    }
}

fn parse_executor(name: &str) -> Result<ExecutorKind, String> {
    match name {
        "cycle-accurate" => Ok(ExecutorKind::CycleAccurate),
        "functional" => Ok(ExecutorKind::Functional),
        "compiled" => Ok(ExecutorKind::Compiled),
        "nest" => Ok(ExecutorKind::Nest),
        other => Err(format!("sweep: unknown executor `{other}`")),
    }
}

/// The canonical JSON encoding of a sweep configuration.
pub fn sweep_config_json(cfg: &zolc_bench::SweepConfig) -> Json {
    Json::Obj(vec![
        ("programs".into(), Json::u64(cfg.programs as u64)),
        ("base_seed".into(), Json::u64(cfg.base_seed)),
        ("gen".into(), gen_config_json(&cfg.gen)),
        (
            "points".into(),
            Json::Arr(
                cfg.points
                    .iter()
                    .map(|p| {
                        Json::Obj(vec![
                            ("label".into(), Json::Str(p.label.clone())),
                            ("config".into(), zolc_config_json(&p.config)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "executor".into(),
            Json::Str(executor_name(cfg.executor).into()),
        ),
    ])
}

/// Decodes a sweep configuration (see [`sweep_config_json`]); absent
/// fields keep the [`zolc_bench::SweepConfig::new`] defaults.
///
/// # Errors
///
/// A message naming the missing or invalid field.
pub fn parse_sweep_config(doc: &Json) -> Result<zolc_bench::SweepConfig, String> {
    let mut cfg = zolc_bench::SweepConfig::new();
    if let Some(v) = doc.get("programs") {
        cfg = cfg.with_programs(v.as_u64().ok_or("sweep: `programs` is not an integer")? as usize);
    }
    if let Some(v) = doc.get("base_seed") {
        cfg = cfg.with_base_seed(v.as_u64().ok_or("sweep: `base_seed` is not an integer")?);
    }
    if let Some(v) = doc.get("gen") {
        cfg = cfg.with_gen(parse_gen_config(v)?);
    }
    if let Some(v) = doc.get("points") {
        let arr = v.as_arr().ok_or("sweep: `points` is not an array")?;
        let mut points = Vec::with_capacity(arr.len());
        for p in arr {
            let label = p
                .get("label")
                .and_then(Json::as_str)
                .ok_or("sweep: point missing `label`")?;
            let config =
                parse_zolc_config(p.get("config").ok_or("sweep: point missing `config`")?)?;
            points.push(SweepPoint::new(label, config));
        }
        cfg = cfg.with_points(points);
    }
    if let Some(v) = doc.get("executor") {
        cfg = cfg.with_executor(parse_executor(
            v.as_str().ok_or("sweep: `executor` is not a string")?,
        )?);
    }
    Ok(cfg)
}

// ---- retarget jobs ------------------------------------------------------

/// Builds a retarget request: the program travels as its encoded text
/// words plus raw data bytes — exactly what an external toolchain that
/// only has the binary can produce.
pub fn retarget_request(program: &Program, config: &ZolcConfig) -> Json {
    Json::Obj(vec![
        ("op".into(), Json::Str("retarget".into())),
        (
            "binary".into(),
            Json::Arr(
                program
                    .text()
                    .iter()
                    .map(|i| Json::u64(u64::from(zolc_isa::encode(i))))
                    .collect(),
            ),
        ),
        (
            "data".into(),
            Json::Arr(
                program
                    .data()
                    .iter()
                    .map(|&b| Json::u64(u64::from(b)))
                    .collect(),
            ),
        ),
        ("config".into(), zolc_config_json(config)),
    ])
}

/// Builds a sweep request.
pub fn sweep_request(cfg: &zolc_bench::SweepConfig) -> Json {
    Json::Obj(vec![
        ("op".into(), Json::Str("sweep".into())),
        ("config".into(), sweep_config_json(cfg)),
    ])
}

/// Decodes a request's `binary`/`data` program fields; `op` names the
/// operation in error messages.
fn parse_program_fields(doc: &Json, op: &str) -> Result<Program, String> {
    let words = doc
        .get("binary")
        .and_then(Json::as_arr)
        .ok_or(format!("{op}: missing `binary` word array"))?;
    let mut text = Vec::with_capacity(words.len());
    for (i, w) in words.iter().enumerate() {
        let word = w
            .as_u64()
            .and_then(|v| u32::try_from(v).ok())
            .ok_or(format!("{op}: binary[{i}] is not a 32-bit word"))?;
        text.push(
            zolc_isa::decode(word).map_err(|e| format!("{op}: binary[{i}] ({word:#010x}): {e}"))?,
        );
    }
    let mut data = Vec::new();
    if let Some(bytes) = doc.get("data") {
        let bytes = bytes
            .as_arr()
            .ok_or(format!("{op}: `data` is not an array"))?;
        data.reserve(bytes.len());
        for (i, b) in bytes.iter().enumerate() {
            data.push(
                b.as_u64()
                    .and_then(|v| u8::try_from(v).ok())
                    .ok_or(format!("{op}: data[{i}] is not a byte"))?,
            );
        }
    }
    Ok(Program::from_parts(text, data))
}

/// Decodes a retarget request's program (see [`retarget_request`]).
///
/// # Errors
///
/// A message naming the malformed field or the undecodable word.
pub fn parse_retarget_program(doc: &Json) -> Result<Program, String> {
    parse_program_fields(doc, "retarget")
}

// ---- lint jobs ----------------------------------------------------------

/// Builds a lint request. Like [`retarget_request`], the program
/// travels as encoded text words plus raw data bytes. With a `config`,
/// the daemon retargets the binary on that configuration first and
/// lints the *excised* program against its synthesized table image (so
/// the hardware back edges are part of the analyzed graph); without
/// one, the binary is linted as-is.
pub fn lint_request(program: &Program, config: Option<&ZolcConfig>) -> Json {
    let mut fields = vec![
        ("op".into(), Json::Str("lint".into())),
        (
            "binary".into(),
            Json::Arr(
                program
                    .text()
                    .iter()
                    .map(|i| Json::u64(u64::from(zolc_isa::encode(i))))
                    .collect(),
            ),
        ),
        (
            "data".into(),
            Json::Arr(
                program
                    .data()
                    .iter()
                    .map(|&b| Json::u64(u64::from(b)))
                    .collect(),
            ),
        ),
    ];
    if let Some(config) = config {
        fields.push(("config".into(), zolc_config_json(config)));
    }
    Json::Obj(fields)
}

/// Decodes a lint request's program (see [`lint_request`]).
///
/// # Errors
///
/// A message naming the malformed field or the undecodable word.
pub fn parse_lint_program(doc: &Json) -> Result<Program, String> {
    parse_program_fields(doc, "lint")
}

/// The canonical JSON encoding of a lint report: `clean`, the total
/// finding count, and one `{kind, addr, message}` object per finding in
/// report order (sorted by address, then kind).
pub fn lint_report_json(report: &LintReport) -> Json {
    Json::Obj(vec![
        ("clean".into(), Json::Bool(report.is_clean())),
        ("findings".into(), Json::u64(report.lints.len() as u64)),
        (
            "lints".into(),
            Json::Arr(
                report
                    .lints
                    .iter()
                    .map(|l| {
                        Json::Obj(vec![
                            ("kind".into(), Json::Str(l.kind.label().into())),
                            ("addr".into(), Json::u64(u64::from(l.addr))),
                            ("message".into(), Json::Str(l.message.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The canonical JSON encoding of a retargeting result: the excised,
/// relocated, self-initializing program (as encoded text words plus
/// data bytes) and the retargeting byproducts a caller needs to reason
/// about it. The synthesized table image itself is not carried — the
/// prepended initialization sequence already writes it.
pub fn retargeted_json(r: &Retargeted) -> Json {
    Json::Obj(vec![
        (
            "text".into(),
            Json::Arr(
                r.program
                    .text()
                    .iter()
                    .map(|i| Json::u64(u64::from(zolc_isa::encode(i))))
                    .collect(),
            ),
        ),
        (
            "data".into(),
            Json::Arr(
                r.program
                    .data()
                    .iter()
                    .map(|&b| Json::u64(u64::from(b)))
                    .collect(),
            ),
        ),
        ("excised".into(), Json::u64(r.excised as u64)),
        (
            "init_instructions".into(),
            Json::u64(r.init_instructions as u64),
        ),
        ("hw_loops".into(), Json::u64(r.counted.len() as u64)),
        (
            "unhandled".into(),
            Json::Arr(r.unhandled.iter().map(|&id| Json::u64(id as u64)).collect()),
        ),
        (
            "counter_regs".into(),
            Json::Arr(
                r.counter_regs
                    .iter()
                    .map(|rg| Json::u64(rg.index() as u64))
                    .collect(),
            ),
        ),
        ("scratch".into(), Json::u64(r.scratch.index() as u64)),
        (
            "notes".into(),
            Json::Arr(r.notes.iter().map(|n| Json::Str(n.clone())).collect()),
        ),
    ])
}

/// Reconstructs the runnable program from a decoded retarget *result*
/// (the `"result"` object of a successful response) — what a client
/// does to execute a daemon-retargeted binary locally.
///
/// # Errors
///
/// A message naming the malformed field or the undecodable word.
pub fn parse_retargeted_program(doc: &Json) -> Result<Arc<Program>, String> {
    let words = doc
        .get("text")
        .and_then(Json::as_arr)
        .ok_or("result: missing `text` word array")?;
    let mut text = Vec::with_capacity(words.len());
    for (i, w) in words.iter().enumerate() {
        let word = w
            .as_u64()
            .and_then(|v| u32::try_from(v).ok())
            .ok_or(format!("result: text[{i}] is not a 32-bit word"))?;
        text.push(zolc_isa::decode(word).map_err(|e| format!("result: text[{i}]: {e}"))?);
    }
    let mut data = Vec::new();
    if let Some(bytes) = doc.get("data").and_then(Json::as_arr) {
        for (i, b) in bytes.iter().enumerate() {
            data.push(
                b.as_u64()
                    .and_then(|v| u8::try_from(v).ok())
                    .ok_or(format!("result: data[{i}] is not a byte"))?,
            );
        }
    }
    Ok(Arc::new(Program::from_parts(text, data)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use zolc_bench::json;

    #[test]
    fn frames_roundtrip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"op\":\"ping\"}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"{\"op\":\"ping\"}");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), None);

        let huge = (MAX_FRAME as u32 + 1).to_be_bytes();
        let mut r = &huge[..];
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_hang() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn zolc_config_roundtrips_every_variant() {
        for config in [
            ZolcConfig::micro(),
            ZolcConfig::lite(),
            ZolcConfig::full(),
            ZolcConfig::custom(2, 8, 1, 0).unwrap(),
        ] {
            let doc = zolc_config_json(&config);
            let back = parse_zolc_config(&doc).unwrap();
            assert_eq!(back, config, "{doc:?}");
        }
        assert!(parse_zolc_config(&Json::Obj(vec![])).is_err());
    }

    #[test]
    fn gen_and_sweep_configs_roundtrip_canonically() {
        let cfg = zolc_bench::SweepConfig::new()
            .with_programs(7)
            .with_base_seed(42)
            .with_gen(GenConfig::new().with_max_trips(24).with_dbnz(false))
            .with_points(vec![SweepPoint::new("lite", ZolcConfig::lite())])
            .with_executor(ExecutorKind::Functional);
        let doc = sweep_config_json(&cfg);
        let back = parse_sweep_config(&doc).unwrap();
        // canonical re-encoding is the identity — this is what cache
        // keys rely on
        assert_eq!(sweep_config_json(&back).render(), doc.render());
        assert_eq!(back.programs, 7);
        assert_eq!(back.gen.max_trips, 24);
        assert!(!back.gen.dbnz);
        assert_eq!(back.executor, ExecutorKind::Functional);
    }

    #[test]
    fn every_executor_tier_has_a_wire_name_that_roundtrips() {
        for kind in ExecutorKind::ALL {
            let back = parse_executor(executor_name(kind)).unwrap();
            assert_eq!(back, kind);
        }
        assert!(parse_executor("superscalar").is_err());
    }

    #[test]
    fn retarget_program_roundtrips_through_the_wire_form() {
        let program = zolc_isa::assemble(
            "
            .data
            buf: .word 1, 2, 3
            .text
            li   r11, 5
      top:  addi r11, r11, -1
            bne  r11, r0, top
            halt
        ",
        )
        .unwrap();
        let req = retarget_request(&program, &ZolcConfig::lite());
        let doc = json::parse(&req.render()).unwrap();
        let back = parse_retarget_program(&doc).unwrap();
        assert_eq!(back.text(), program.text());
        assert_eq!(back.data(), program.data());
        let config = parse_zolc_config(doc.get("config").unwrap()).unwrap();
        assert_eq!(config, ZolcConfig::lite());
    }

    #[test]
    fn retargeted_results_reconstruct_the_program() {
        let program = zolc_isa::assemble(
            "
            li   r11, 5
      top:  addi r11, r11, -1
            bne  r11, r0, top
            halt
        ",
        )
        .unwrap();
        let r = zolc_cfg::retarget(&program, &ZolcConfig::lite()).unwrap();
        let doc = json::parse(&retargeted_json(&r).render()).unwrap();
        let back = parse_retargeted_program(&doc).unwrap();
        assert_eq!(back.text(), r.program.text());
        assert_eq!(back.data(), r.program.data());
        assert_eq!(doc.get("hw_loops").unwrap().as_u64(), Some(1));
    }
}
