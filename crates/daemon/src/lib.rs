//! # zolc-daemon — sweep-as-a-service
//!
//! `zolcd` is a persistent job daemon over the retargeting pipeline,
//! the binary lint pass and the sweep harness: clients submit
//! **retarget** jobs (a raw XR32 binary plus a
//! [`ZolcConfig`](zolc_core::ZolcConfig)), **lint** jobs (a binary,
//! optionally retargeted first and linted against its synthesized
//! table image) and **sweep** jobs (a
//! [`SweepConfig`](zolc_bench::SweepConfig)) over a tiny
//! length-prefixed JSON protocol, and the daemon answers repeated jobs
//! from content-addressed result caches instead of recomputing them.
//!
//! The cost model this serves: a retarget is milliseconds, a sweep is
//! seconds to minutes — and design-space exploration resubmits the
//! *same* jobs constantly (the same kernel against a grid of
//! configurations, the same sweep re-requested by every member of a
//! team or CI shard). Caching at a daemon shares that work across
//! processes the way [`CompiledProgram`](zolc_sim::CompiledProgram)
//! shares compiled blocks across sessions within one.
//!
//! Three guarantees shape the design:
//!
//! * **Byte-identity** — a cache hit returns *exactly* the bytes the
//!   cold computation produced (responses splice the cached rendering
//!   verbatim, and there is deliberately no "cached" marker). Offline
//!   recomputation via [`server::offline_retarget_response`] /
//!   [`server::offline_sweep_response`] produces the same bytes, which
//!   is what `scripts/daemon_smoke.sh` asserts.
//! * **Content addressing** — cache keys hash the canonical re-encoding
//!   of the decoded job, never the client's formatting, so equivalent
//!   requests share entries and entries can never go stale.
//! * **Single-flight** — concurrent clients racing on a cold key
//!   compute once; the rest wait and share the result (failures
//!   included).
//!
//! ```no_run
//! use zolc_daemon::{Client, Daemon, DaemonConfig};
//!
//! let daemon = Daemon::bind(&DaemonConfig::new())?;
//! let addr = daemon.local_addr();
//! std::thread::spawn(move || daemon.run());
//!
//! let mut client = Client::connect(addr)?;
//! assert!(client.ping()?);
//! # std::io::Result::Ok(())
//! ```
//!
//! See `examples/zolcd.rs` (the server binary) and
//! `examples/zolc-client.rs` (a job-submitting client with offline
//! verification), and the "Daemon & caches" section of
//! `ARCHITECTURE.md` for the protocol and cache-key reference.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use cache::{CacheStats, ResultCache};
pub use client::Client;
pub use server::{Daemon, DaemonConfig};
