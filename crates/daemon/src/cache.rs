//! A content-addressed, single-flight result cache.
//!
//! Keys are the **canonical bytes** of a job (see the protocol module's
//! canonicalization rules), hashed with FNV-1a; the full canonical form
//! is kept alongside each entry so a 64-bit collision degrades to a
//! second slot in the bucket, never to a wrong answer. Because keys are
//! pure functions of job content, entries can never go stale — there is
//! no TTL and no invalidation; restarting the daemon is the only flush.
//!
//! The cache is **single-flight**: when two clients race on the same
//! cold key, one computes while the others block on a condvar, and all
//! of them receive the one rendered result. Failures are cached too —
//! a malformed program that cannot be retargeted fails once, not once
//! per client.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// FNV-1a over `bytes` — the same hash family the sweep fingerprint
/// uses, hand-rolled because the default [`std::collections`] hasher is
/// randomized per process and cache keys must at least be stable within
/// one daemon lifetime (and cheap over multi-megabyte canon forms).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

enum State {
    /// Some thread is computing; waiters sleep on the condvar.
    Building,
    /// The rendered result document, shared with every response.
    Ready(Arc<String>),
    /// The computation failed; the error is replayed to later clients.
    Failed(String),
}

struct Entry {
    /// Full canonical bytes — compared on lookup so FNV collisions
    /// fall into separate slots instead of aliasing.
    canon: Vec<u8>,
    state: State,
}

/// Counters and occupancy of a [`ResultCache`], as returned by
/// [`ResultCache::stats`].
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct CacheStats {
    /// Lookups answered from a completed entry (or by waiting out an
    /// in-flight computation of the same job).
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Completed entries currently resident (successes and failures).
    pub entries: usize,
}

/// A content-addressed result cache with single-flight computation.
pub struct ResultCache {
    map: Mutex<HashMap<u64, Vec<Entry>>>,
    ready: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    /// The key hash over canonical bytes — FNV-1a in production;
    /// injectable in tests so a forced collision exercises the
    /// bucket-split path deterministically.
    hash: fn(&[u8]) -> u64,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> ResultCache {
        ResultCache {
            map: Mutex::new(HashMap::new()),
            ready: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            hash: fnv1a,
        }
    }

    /// An empty cache keyed by an arbitrary hash function. Test-only:
    /// production callers always want [`ResultCache::new`]'s FNV-1a,
    /// but a degenerate hasher is the only cheap way to force two
    /// canons into one bucket.
    #[cfg(test)]
    fn with_hasher(hash: fn(&[u8]) -> u64) -> ResultCache {
        ResultCache {
            hash,
            ..ResultCache::new()
        }
    }

    /// Returns the cached result for `canon`, computing it with
    /// `compute` on a miss. Concurrent callers with the same `canon`
    /// compute once: the first runs `compute` (outside the lock), the
    /// rest block until it finishes and share the outcome.
    ///
    /// # Errors
    ///
    /// The error `compute` produced — whether on this call or on the
    /// earlier call that populated (and failed) this entry.
    pub fn get_or_compute(
        &self,
        canon: &[u8],
        compute: impl FnOnce() -> Result<String, String>,
    ) -> Result<Arc<String>, String> {
        let key = (self.hash)(canon);
        let slot;
        {
            let mut map = self.map.lock().expect("cache poisoned");
            loop {
                let bucket = map.entry(key).or_default();
                match bucket.iter().position(|e| e.canon == canon) {
                    None => {
                        slot = bucket.len();
                        bucket.push(Entry {
                            canon: canon.to_vec(),
                            state: State::Building,
                        });
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    Some(i) => match &bucket[i].state {
                        State::Building => {
                            map = self.ready.wait(map).expect("cache poisoned");
                        }
                        State::Ready(result) => {
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            return Ok(Arc::clone(result));
                        }
                        State::Failed(e) => {
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            return Err(e.clone());
                        }
                    },
                }
            }
        }

        // We own the Building slot; compute outside the lock so other
        // keys proceed, then publish and wake every waiter (waiters on
        // other keys just re-check and sleep again).
        let outcome = compute();
        let mut map = self.map.lock().expect("cache poisoned");
        let entry = &mut map.get_mut(&key).expect("building entry vanished")[slot];
        let result = match outcome {
            Ok(doc) => {
                let doc = Arc::new(doc);
                entry.state = State::Ready(Arc::clone(&doc));
                Ok(doc)
            }
            Err(e) => {
                entry.state = State::Failed(e.clone());
                Err(e)
            }
        };
        drop(map);
        self.ready.notify_all();
        result
    }

    /// Current counters and occupancy. In-flight computations do not
    /// count as entries until they finish.
    pub fn stats(&self) -> CacheStats {
        let map = self.map.lock().expect("cache poisoned");
        let entries = map
            .values()
            .flatten()
            .filter(|e| !matches!(e.state, State::Building))
            .count();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
        }
    }
}

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    #[test]
    fn second_lookup_hits_and_shares_the_allocation() {
        let cache = ResultCache::new();
        let a = cache
            .get_or_compute(b"job", || Ok("{\"answer\":42}".into()))
            .unwrap();
        let b = cache
            .get_or_compute(b"job", || panic!("must not recompute"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn failures_are_cached_and_replayed() {
        let cache = ResultCache::new();
        assert_eq!(
            cache.get_or_compute(b"bad", || Err("nope".into())),
            Err("nope".into())
        );
        assert_eq!(
            cache.get_or_compute(b"bad", || panic!("must not recompute")),
            Err("nope".into())
        );
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn racing_threads_compute_once() {
        let cache = ResultCache::new();
        let runs = AtomicUsize::new(0);
        thread::scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {
                    let got = cache
                        .get_or_compute(b"shared", || {
                            runs.fetch_add(1, Ordering::SeqCst);
                            // widen the race window
                            thread::sleep(std::time::Duration::from_millis(10));
                            Ok("result".into())
                        })
                        .unwrap();
                    assert_eq!(*got, "result");
                });
            }
        });
        assert_eq!(runs.load(Ordering::SeqCst), 1, "single-flight violated");
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 15);
    }

    #[test]
    fn colliding_hashes_would_still_disambiguate_by_canon() {
        // We can't cheaply forge an FNV collision, but the bucket logic
        // is exercised by two keys that differ only in canon bytes.
        let cache = ResultCache::new();
        let a = cache.get_or_compute(b"k1", || Ok("one".into())).unwrap();
        let b = cache.get_or_compute(b"k2", || Ok("two".into())).unwrap();
        assert_ne!(*a, *b);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn forced_collision_splits_the_bucket_by_canon() {
        // A constant hasher drives every canon into one 64-bit key:
        // the bucket must split into one slot per canon — two misses,
        // two resident entries — and later lookups must replay each
        // canon's own result as a hit, never the bucket-mate's.
        let cache = ResultCache::with_hasher(|_| 0);
        let a = cache.get_or_compute(b"left", || Ok("L".into())).unwrap();
        let b = cache.get_or_compute(b"right", || Ok("R".into())).unwrap();
        assert_eq!((a.as_str(), b.as_str()), ("L", "R"));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 2, 2));
        let a2 = cache
            .get_or_compute(b"left", || panic!("must not recompute"))
            .unwrap();
        let b2 = cache
            .get_or_compute(b"right", || panic!("must not recompute"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &a2) && Arc::ptr_eq(&b, &b2));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (2, 2, 2));
        // Failures split the same way: a third canon in the same
        // bucket caches its error without disturbing its mates.
        assert_eq!(
            cache.get_or_compute(b"bad", || Err("boom".into())),
            Err("boom".into())
        );
        assert_eq!(
            cache.get_or_compute(b"bad", || panic!("must not recompute")),
            Err("boom".into())
        );
        assert_eq!(cache.stats().entries, 3);
        assert_eq!(
            *cache.get_or_compute(b"left", || unreachable!()).unwrap(),
            "L"
        );
    }
}
