//! Minimal offline stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The build environment of this repository cannot reach crates.io, so
//! this shim implements the subset of the criterion API the workspace's
//! benches use: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Like real criterion, passing `--test` on the bench command line
//! (`cargo bench -- --test`) runs every benchmark body exactly once as a
//! smoke test; otherwise each benchmark is timed with a short wall-clock
//! sampling loop and a mean ns/iter is reported on stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            sample_size: 100,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        let (test_mode, sample_size) = (self.test_mode, self.sample_size);
        run_one(&id.into(), test_mode, sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    test_mode: bool,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.test_mode, self.sample_size, f);
        self
    }

    /// Finish the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Passed to each benchmark body; call [`Bencher::iter`] with the code
/// under measurement.
#[derive(Debug)]
pub struct Bencher {
    mode: BenchMode,
    elapsed: Duration,
    iters: u64,
}

#[derive(Debug, Clone, Copy)]
enum BenchMode {
    /// Run the routine exactly once (`--test`).
    Once,
    /// Time the routine for roughly this many samples.
    Timed { samples: usize },
}

impl Bencher {
    /// Measure `routine`, keeping its result alive via [`black_box`].
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        match self.mode {
            BenchMode::Once => {
                black_box(routine());
                self.iters = 1;
            }
            BenchMode::Timed { samples } => {
                // Warm-up, then sample until the budget is spent.
                black_box(routine());
                let budget = Duration::from_millis(200);
                let start = Instant::now();
                let mut iters = 0u64;
                while iters < samples as u64 && start.elapsed() < budget {
                    black_box(routine());
                    iters += 1;
                }
                self.elapsed = start.elapsed();
                self.iters = iters.max(1);
            }
        }
    }
}

fn run_one(id: &str, test_mode: bool, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mode = if test_mode {
        BenchMode::Once
    } else {
        BenchMode::Timed {
            samples: sample_size,
        }
    };
    let mut b = Bencher {
        mode,
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    assert!(b.iters > 0, "benchmark {id} never called Bencher::iter");
    if test_mode {
        println!("test {id} ... ok");
    } else {
        let ns = b.elapsed.as_nanos() / u128::from(b.iters);
        println!("{id}: {ns} ns/iter ({} iters)", b.iters);
    }
}

/// Collects benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `fn main` invoking the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
