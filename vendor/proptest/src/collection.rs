//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size bound for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

/// Generates `Vec`s whose length lies in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Clone, Copy, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min + 1) as u64;
        let len = self.size.min + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
