//! Minimal offline stand-in for the [`proptest`](https://docs.rs/proptest)
//! property-testing crate.
//!
//! The build environment of this repository cannot reach crates.io, so this
//! shim implements the subset of the proptest API the workspace's test
//! suites use: the [`Strategy`] trait with the range / tuple / `Just` /
//! [`any`] / union / map / flat-map / collection combinators, plus the
//! [`proptest!`], [`prop_oneof!`] and `prop_assert*!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case panics with the assertion message
//!   only;
//! * generation is deterministic per test (seeded from the test's name),
//!   so CI failures reproduce locally; set `PROPTEST_SEED` to perturb it;
//! * `PROPTEST_CASES` overrides the number of cases globally (smoke runs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy};
pub use test_runner::{Config as ProptestConfig, TestRng};

use std::ops::{Range, RangeInclusive};

/// A strategy producing any value of type `T` (full range for integers).
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Generates arbitrary values of `T` over its whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types with a canonical full-domain generator, usable via [`any`].
pub trait Arbitrary {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                ((rng.next_u64() as i128).rem_euclid(span) + self.start as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                ((rng.next_u64() as i128).rem_euclid(span) + *self.start() as i128) as $t
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Succeed-or-fail result type of a property body (compatibility alias).
pub type TestCaseResult = Result<(), String>;

/// Asserts a condition inside a property; panics with the formatted
/// message on failure (the shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::__run_cases(stringify!($name), &config, |__rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                    $body
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

/// Macro back-end: runs `case` for the configured number of cases with a
/// deterministic per-test RNG. Not part of the public proptest API.
#[doc(hidden)]
pub fn __run_cases(name: &str, config: &ProptestConfig, mut case: impl FnMut(&mut TestRng)) {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases);
    let mut rng = TestRng::for_test(name);
    for _ in 0..cases {
        case(&mut rng);
    }
}
