//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;

/// A generator of values for property tests.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a seeded generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds on it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn StrategyObj<T>>);

trait StrategyObj<T> {
    fn generate_obj(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> StrategyObj<S::Value> for S {
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_obj(rng)
    }
}

/// Uniform choice among same-typed strategies (backs [`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Build a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
