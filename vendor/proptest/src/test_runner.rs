//! Test configuration and the deterministic RNG backing generation.

/// Per-suite configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of cases each property runs (default 256, as in real
    /// proptest). Overridable globally with `PROPTEST_CASES`.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 256 }
    }
}

/// A small deterministic RNG (splitmix64) seeded from the test name.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG with an explicit seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Deterministic RNG for the named test, perturbed by the
    /// `PROPTEST_SEED` environment variable when set.
    ///
    /// Seeding uses FNV-1a rather than std's `DefaultHasher`, whose
    /// algorithm may change between Rust releases: the seed — and with
    /// it the generated case sequence — must match across toolchains so
    /// CI failures reproduce locally.
    pub fn for_test(name: &str) -> TestRng {
        let mut seed = fnv1a(0xcbf2_9ce4_8422_2325, name);
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            seed = fnv1a(seed, &extra);
        }
        TestRng::new(seed)
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// 64-bit FNV-1a over `s`, continuing from `state` (stable across Rust
/// releases, unlike `DefaultHasher`).
fn fnv1a(state: u64, s: &str) -> u64 {
    s.bytes().fold(state, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}
